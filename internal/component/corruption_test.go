package component

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rottnest/internal/objectstore"
)

// TestCorruptionNeverPanics flips random bytes of a valid component
// file and verifies open/read paths return errors (or garbage data)
// but never panic — the behaviour an index reader needs when an
// object is damaged or torn.
func TestCorruptionNeverPanics(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(KindTrie)
	for i := 0; i < 5; i++ {
		payload := make([]byte, 2000+rng.Intn(3000))
		rng.Read(payload)
		b.Add(payload)
	}
	valid, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), valid...)
		// Flip 1-4 random bytes.
		for f := 0; f <= rng.Intn(4); f++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		store := objectstore.NewMemStore(nil)
		store.Put(ctx, "k", corrupted)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			r, err := Open(ctx, store, "k", OpenOptions{})
			if err != nil {
				return // rejected at open: fine
			}
			for i := 0; i < r.NumComponents() && i < 10; i++ {
				r.Component(ctx, i) // may error; must not panic
			}
		}()
	}
}

// TestTruncationNeverPanics cuts the file at every length class.
func TestTruncationNeverPanics(t *testing.T) {
	ctx := context.Background()
	b := NewBuilder(KindFM)
	b.Add([]byte("component zero"))
	b.Add([]byte("component one"))
	valid, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut += 3 {
		store := objectstore.NewMemStore(nil)
		store.Put(ctx, "k", valid[:cut])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("cut %d panicked: %v", cut, p)
				}
			}()
			r, err := Open(ctx, store, "k", OpenOptions{})
			if err != nil {
				return
			}
			for i := 0; i < r.NumComponents(); i++ {
				r.Component(ctx, i)
			}
		}()
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	// A builder never errors on Add today (flate cannot fail on
	// valid input), but Finish must stay callable exactly once per
	// builder and produce stable output.
	b := NewBuilder(KindIVFPQ)
	id0 := b.Add([]byte("x"))
	id1 := b.Add(nil)
	if id0 != 0 || id1 != 1 || b.NumComponents() != 2 {
		t.Fatalf("ids %d,%d n=%d", id0, id1, b.NumComponents())
	}
	data, err := b.Finish()
	if err != nil || len(data) == 0 {
		t.Fatalf("finish: %v", err)
	}
	// The kind byte round-trips.
	store := objectstore.NewMemStore(nil)
	store.Put(context.Background(), "k", data)
	kind, err := ReadKind(context.Background(), store, "k")
	if err != nil || kind != KindIVFPQ {
		t.Fatalf("kind = %v, %v", kind, err)
	}
}

func ExampleBuilder() {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	b := NewBuilder(KindTrie)
	leaf := b.Add([]byte("leaf data"))
	root := b.Add([]byte("root data")) // appended last: captured by the open's tail read
	data, _ := b.Finish()
	store.Put(ctx, "example.index", data)

	r, _ := Open(ctx, store, "example.index", OpenOptions{})
	rootData, _ := r.Component(ctx, root)
	leafData, _ := r.Component(ctx, leaf)
	fmt.Println(string(rootData), "/", string(leafData))
	// Output: root data / leaf data
}
