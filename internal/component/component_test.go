package component

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rottnest/internal/objectstore"
)

func buildTestFile(t *testing.T, kind Kind, comps ...[]byte) []byte {
	t.Helper()
	b := NewBuilder(kind)
	for _, c := range comps {
		b.Add(c)
	}
	data, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBuildOpenRoundTrip(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	comps := [][]byte{
		bytes.Repeat([]byte("leaf0-"), 1000),
		bytes.Repeat([]byte("leaf1-"), 2000),
		[]byte("root"),
		{}, // empty component is legal
	}
	data := buildTestFile(t, KindTrie, comps...)
	if err := store.Put(ctx, "ix/a.index", data); err != nil {
		t.Fatal(err)
	}
	r, err := Open(ctx, store, "ix/a.index", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindTrie || r.NumComponents() != 4 || r.Size() != int64(len(data)) {
		t.Fatalf("kind=%d n=%d size=%d", r.Kind(), r.NumComponents(), r.Size())
	}
	for i, want := range comps {
		got, err := r.Component(ctx, i)
		if err != nil {
			t.Fatalf("component %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("component %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.Component(ctx, 4); err == nil {
		t.Fatal("out-of-range component accepted")
	}
	if _, err := r.Component(ctx, -1); err == nil {
		t.Fatal("negative component accepted")
	}
}

func TestTailCapturesTrailingComponents(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	// Big leading component, small root at the end.
	big := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(big) // incompressible
	root := []byte("tiny root structure")
	data := buildTestFile(t, KindFM, big, root)
	inner.Put(ctx, "k", data)

	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	r, err := Open(ctx, store, "k", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	afterOpen := metrics.Snapshot()
	// Root lies in the cached tail: no further GETs.
	got, err := r.Component(ctx, 1)
	if err != nil || !bytes.Equal(got, root) {
		t.Fatalf("root read: %v", err)
	}
	if d := metrics.Snapshot().Sub(afterOpen); d.Gets != 0 {
		t.Fatalf("root read issued %d GETs, want 0", d.Gets)
	}
	// The big leading component costs exactly one GET.
	if _, err := r.Component(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if d := metrics.Snapshot().Sub(afterOpen); d.Gets != 1 {
		t.Fatalf("leaf read issued %d GETs, want 1", d.Gets)
	}
	// Cached afterwards.
	r.Component(ctx, 0)
	if d := metrics.Snapshot().Sub(afterOpen); d.Gets != 1 {
		t.Fatalf("cached re-read issued extra GETs: %d", d.Gets)
	}
}

func TestComponentsFanFetch(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	rng := rand.New(rand.NewSource(2))
	comps := make([][]byte, 6)
	for i := range comps {
		comps[i] = make([]byte, 1<<20)
		rng.Read(comps[i])
	}
	data := buildTestFile(t, KindIVFPQ, comps...)
	inner.Put(ctx, "k", data)
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	r, err := Open(ctx, store, "k", OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Snapshot()
	got, err := r.Components(ctx, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range []int{0, 2, 4} {
		if !bytes.Equal(got[j], comps[i]) {
			t.Fatalf("component %d mismatch", i)
		}
	}
	d := metrics.Snapshot().Sub(before)
	if d.Gets > 3 {
		t.Fatalf("fan fetch issued %d GETs for 3 components", d.Gets)
	}
}

func TestCompression(t *testing.T) {
	// Repetitive components must compress.
	comp := bytes.Repeat([]byte("abcdefgh"), 100000)
	data := buildTestFile(t, KindTrie, comp)
	if len(data) >= len(comp)/4 {
		t.Fatalf("file %d bytes for %d raw; compression ineffective", len(data), len(comp))
	}
}

func TestReadKind(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	for _, kind := range []Kind{KindTrie, KindFM, KindIVFPQ} {
		key := fmt.Sprintf("k%d", kind)
		store.Put(ctx, key, buildTestFile(t, kind, []byte("x")))
		got, err := ReadKind(ctx, store, key)
		if err != nil || got != kind {
			t.Fatalf("ReadKind(%s) = %d, %v", key, got, err)
		}
	}
	store.Put(ctx, "bad", []byte("definitely not a component file"))
	if _, err := ReadKind(ctx, store, "bad"); err == nil {
		t.Fatal("bad file accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	if _, err := Open(ctx, store, "missing", OpenOptions{}); err == nil {
		t.Fatal("missing key accepted")
	}
	store.Put(ctx, "garbage", []byte("123456789012"))
	if _, err := Open(ctx, store, "garbage", OpenOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLargeDirectoryBeyondTail(t *testing.T) {
	// Force the directory itself to exceed the speculative tail read.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	b := NewBuilder(KindTrie)
	for i := 0; i < 500; i++ {
		b.Add([]byte(fmt.Sprintf("component-%d", i)))
	}
	data, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "k", data)
	r, err := Open(ctx, store, "k", OpenOptions{TailBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumComponents() != 500 {
		t.Fatalf("components = %d", r.NumComponents())
	}
	got, err := r.Component(ctx, 123)
	if err != nil || string(got) != "component-123" {
		t.Fatalf("component 123 = %q, %v", got, err)
	}
}
