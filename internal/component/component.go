// Package component implements Rottnest's componentization strategy
// for object-storage-resident index files (Section V-B of the paper).
//
// An index data structure is broken into independently compressed
// components concatenated into a single object, followed by a
// directory of component offsets. A reader opens the file with one
// suffix-range GET that captures the directory (and, by convention,
// the "root" component that builders append last), then fetches only
// the components a query touches — turning long chains of dependent
// small reads into a small number of ranged GETs, while keeping the
// compression benefits of serialize-the-whole-structure designs.
//
// File layout:
//
//	[data of component 0][data of component 1]...[data of component n-1]
//	[directory: n * 3 x uvarint (offset, size, rawSize)][u8 kind]
//	[u32 directory length][u64 file size][magic "RCF1"]
//
// The trailer carries the total file size so a reader can anchor its
// suffix read without a HEAD request: opening costs exactly one GET.
package component

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"rottnest/internal/objectstore"
	"rottnest/internal/parallel"
)

var magic = []byte("RCF1")

// Kind tags the index type stored in a component file, so readers can
// reject files of the wrong type.
type Kind uint8

// Index kinds.
const (
	// KindTrie is the UUID binary-trie index.
	KindTrie Kind = iota + 1
	// KindFM is the FM-index substring index.
	KindFM
	// KindIVFPQ is the IVF-PQ vector index.
	KindIVFPQ
)

// String names the kind for logs and trace attributes.
func (k Kind) String() string {
	switch k {
	case KindTrie:
		return "trie"
	case KindFM:
		return "fm"
	case KindIVFPQ:
		return "ivfpq"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Builder assembles a component file. Add components in access-cost
// order: components added later sit nearer the directory and are
// captured by the reader's single suffix read, so builders append the
// root component last.
type Builder struct {
	kind Kind
	buf  []byte
	dir  []dirEntry
	err  error
}

type dirEntry struct {
	offset  int64
	size    int64
	rawSize int64
}

// NewBuilder returns a builder for a file of the given kind.
func NewBuilder(kind Kind) *Builder {
	return &Builder{kind: kind}
}

// Add compresses data and appends it as the next component, returning
// its component ID. Errors are deferred to Finish.
func (b *Builder) Add(data []byte) int {
	id := len(b.dir)
	if b.err != nil {
		return id
	}
	compressed, err := deflate(data)
	if err != nil {
		b.err = err
		return id
	}
	b.append(compressed, int64(len(data)))
	return id
}

// AddAll compresses the given components on all cores and appends
// them in input order, returning the ID of the first (IDs are
// consecutive, exactly as if Add had been called for each). deflate is
// deterministic for a given input, so a file built with AddAll is
// byte-identical to one built with serial Add calls — the index build
// pipelines depend on this. Errors are deferred to Finish.
func (b *Builder) AddAll(datas [][]byte) int {
	first := len(b.dir)
	if b.err != nil || len(datas) == 0 {
		return first
	}
	compressed := make([][]byte, len(datas))
	errs := make([]error, len(datas))
	parallel.ForEach(len(datas), func(i int) {
		compressed[i], errs[i] = deflate(datas[i])
	})
	for i, c := range compressed {
		if errs[i] != nil {
			b.err = errs[i]
			return first
		}
		b.append(c, int64(len(datas[i])))
	}
	return first
}

// append records one already-compressed component.
func (b *Builder) append(compressed []byte, rawSize int64) {
	b.dir = append(b.dir, dirEntry{
		offset:  int64(len(b.buf)),
		size:    int64(len(compressed)),
		rawSize: rawSize,
	})
	b.buf = append(b.buf, compressed...)
}

// Finish appends the directory and trailer and returns the complete
// file bytes.
func (b *Builder) Finish() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	dirStart := len(b.buf)
	for _, e := range b.dir {
		b.buf = binary.AppendUvarint(b.buf, uint64(e.offset))
		b.buf = binary.AppendUvarint(b.buf, uint64(e.size))
		b.buf = binary.AppendUvarint(b.buf, uint64(e.rawSize))
	}
	b.buf = append(b.buf, byte(b.kind))
	dirLen := len(b.buf) - dirStart
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(dirLen))
	// Total size including this trailer: dirLen bytes of directory
	// already appended + 4 (dirLen) + 8 (size) + 4 (magic).
	total := uint64(len(b.buf) + 8 + 4)
	b.buf = binary.LittleEndian.AppendUint64(b.buf, total)
	b.buf = append(b.buf, magic...)
	return b.buf, nil
}

// NumComponents returns the number of components added so far.
func (b *Builder) NumComponents() int { return len(b.dir) }

func deflate(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("component: flate: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("component: flate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("component: flate: %w", err)
	}
	return buf.Bytes(), nil
}

func inflate(data []byte, rawSize int64) ([]byte, error) {
	// rawSize comes from the file's directory; cap the preallocation
	// so a corrupted directory cannot force a giant allocation.
	prealloc := rawSize
	if prealloc < 0 || prealloc > 64<<20 {
		prealloc = 64 << 20
	}
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	buf := bytes.NewBuffer(make([]byte, 0, prealloc))
	if _, err := io.Copy(buf, r); err != nil {
		return nil, fmt.Errorf("component: inflate: %w", err)
	}
	return buf.Bytes(), nil
}

// Reader provides lazy access to a component file on an object store.
// Opening performs one suffix-range GET; each Component call fetches
// (and caches) only the requested component, satisfied from the
// already-fetched tail when possible.
type Reader struct {
	store objectstore.Store
	key   string
	kind  Kind
	dir   []dirEntry
	size  int64

	// tail caches the suffix read performed at open; components whose
	// extent lies within it cost no extra request.
	tail    []byte
	tailOff int64

	retain bool

	mu    sync.Mutex
	cache map[int][]byte
}

// OpenOptions tune the reader.
type OpenOptions struct {
	// TailBytes is the size of the speculative suffix read at open.
	// Defaults to 256 KiB, sized to capture the directory plus a
	// typical root component in one request.
	TailBytes int64

	// NoRetain stops the reader from accumulating fetched component
	// bytes in its per-reader cache: only the open-time tail and the
	// parsed directory stay resident. Set it when the reader itself is
	// cached across queries (objcache) so that posting payloads read
	// through it do not grow without bound; repeat-read savings for
	// those payloads belong to the byte-level CachedStore below.
	NoRetain bool
}

// Open fetches the file's directory (one suffix-range GET) and returns
// a lazy reader.
func Open(ctx context.Context, store objectstore.Store, key string, opts OpenOptions) (*Reader, error) {
	tailBytes := opts.TailBytes
	if tailBytes <= 0 {
		tailBytes = 256 << 10
	}
	tail, err := store.GetRange(ctx, key, -tailBytes, 0)
	if err != nil {
		return nil, fmt.Errorf("component: open %s: %w", key, err)
	}
	const trailerLen = 4 + 8 + 4 // dirLen + file size + magic
	if len(tail) < trailerLen || !bytes.Equal(tail[len(tail)-4:], magic) {
		return nil, fmt.Errorf("component: %s: bad magic", key)
	}
	size := int64(binary.LittleEndian.Uint64(tail[len(tail)-12:]))
	dirLen := int(binary.LittleEndian.Uint32(tail[len(tail)-16:]))
	if dirLen+trailerLen > len(tail) {
		// Directory exceeds the speculative read; fetch it exactly.
		tail, err = store.GetRange(ctx, key, -int64(dirLen+trailerLen), 0)
		if err != nil {
			return nil, fmt.Errorf("component: open %s directory: %w", key, err)
		}
	}
	// A corrupt dirLen can exceed the whole file (suffix reads clamp at
	// the start) or claim an empty directory with no kind byte.
	if dirLen < 1 || dirLen+trailerLen > len(tail) {
		return nil, fmt.Errorf("component: %s: corrupt directory length %d", key, dirLen)
	}
	dirBytes := tail[len(tail)-trailerLen-dirLen : len(tail)-trailerLen]
	kind := Kind(dirBytes[dirLen-1])
	dirBytes = dirBytes[:dirLen-1]
	var dir []dirEntry
	for len(dirBytes) > 0 {
		var e dirEntry
		var n int
		var v uint64
		v, n = binary.Uvarint(dirBytes)
		if n <= 0 {
			return nil, fmt.Errorf("component: %s: corrupt directory", key)
		}
		e.offset = int64(v)
		dirBytes = dirBytes[n:]
		v, n = binary.Uvarint(dirBytes)
		if n <= 0 {
			return nil, fmt.Errorf("component: %s: corrupt directory", key)
		}
		e.size = int64(v)
		dirBytes = dirBytes[n:]
		v, n = binary.Uvarint(dirBytes)
		if n <= 0 {
			return nil, fmt.Errorf("component: %s: corrupt directory", key)
		}
		e.rawSize = int64(v)
		dirBytes = dirBytes[n:]
		dir = append(dir, e)
	}
	return &Reader{
		store:   store,
		key:     key,
		kind:    kind,
		dir:     dir,
		size:    size,
		tail:    tail,
		tailOff: size - int64(len(tail)),
		retain:  !opts.NoRetain,
		cache:   make(map[int][]byte),
	}, nil
}

// Kind returns the file's index kind.
func (r *Reader) Kind() Kind { return r.kind }

// Key returns the object key the reader was opened on.
func (r *Reader) Key() string { return r.key }

// NumComponents returns the number of components in the file.
func (r *Reader) NumComponents() int { return len(r.dir) }

// Size returns the file's total byte size.
func (r *Reader) Size() int64 { return r.size }

// Footprint estimates the reader's resident memory in bytes — the
// retained tail plus the parsed directory — for cache cost accounting.
// The per-reader component cache is excluded: readers held across
// queries are opened with NoRetain, so it stays empty.
func (r *Reader) Footprint() int64 {
	return int64(len(r.tail)) + 24*int64(len(r.dir)) + 64
}

// Component returns the decompressed bytes of component id, fetching
// it with a ranged GET unless it lies within the cached tail or was
// read before.
func (r *Reader) Component(ctx context.Context, id int) ([]byte, error) {
	raw, err := r.rawComponent(ctx, id)
	if err != nil {
		return nil, err
	}
	return inflate(raw, r.dir[id].rawSize)
}

func (r *Reader) rawComponent(ctx context.Context, id int) ([]byte, error) {
	if id < 0 || id >= len(r.dir) {
		return nil, fmt.Errorf("component: %s: component %d out of range", r.key, id)
	}
	r.mu.Lock()
	cached, ok := r.cache[id]
	r.mu.Unlock()
	if ok {
		return cached, nil
	}
	e := r.dir[id]
	if e.offset < 0 || e.size < 0 || e.offset+e.size > r.size {
		return nil, fmt.Errorf("component: %s: component %d extent [%d,%d) outside file of %d bytes",
			r.key, id, e.offset, e.offset+e.size, r.size)
	}
	var raw []byte
	if e.offset >= r.tailOff {
		lo := e.offset - r.tailOff
		if lo+e.size > int64(len(r.tail)) {
			return nil, fmt.Errorf("component: %s: component %d extent exceeds cached tail", r.key, id)
		}
		raw = r.tail[lo : lo+e.size]
	} else {
		var err error
		raw, err = r.store.GetRange(ctx, r.key, e.offset, e.size)
		if err != nil {
			return nil, fmt.Errorf("component: %s: read component %d: %w", r.key, id, err)
		}
	}
	if r.retain {
		r.mu.Lock()
		r.cache[id] = raw
		r.mu.Unlock()
	}
	return raw, nil
}

// Components fetches several components concurrently (one parallel
// request fan) and returns them decompressed, in the order of ids.
func (r *Reader) Components(ctx context.Context, ids []int) ([][]byte, error) {
	out := make([][]byte, len(ids))

	// Partition into cached/tail hits and remote fetches.
	var reqs []objectstore.RangeRequest
	var fetchIdx []int
	for i, id := range ids {
		if id < 0 || id >= len(r.dir) {
			return nil, fmt.Errorf("component: %s: component %d out of range", r.key, id)
		}
		e := r.dir[id]
		r.mu.Lock()
		_, cached := r.cache[id]
		r.mu.Unlock()
		if cached || e.offset >= r.tailOff {
			continue
		}
		reqs = append(reqs, objectstore.RangeRequest{Key: r.key, Offset: e.offset, Length: e.size})
		fetchIdx = append(fetchIdx, i)
	}
	// The fan's raws are held locally so the call works identically
	// with NoRetain readers, which never store fetched bytes in r.cache.
	fetched := make(map[int][]byte, len(reqs))
	if len(reqs) > 0 {
		raws, err := objectstore.FanGet(ctx, r.store, reqs)
		if err != nil {
			return nil, fmt.Errorf("component: %s: fan read: %w", r.key, err)
		}
		for j, raw := range raws {
			fetched[ids[fetchIdx[j]]] = raw
		}
		if r.retain {
			r.mu.Lock()
			for id, raw := range fetched {
				r.cache[id] = raw
			}
			r.mu.Unlock()
		}
	}
	for i, id := range ids {
		if raw, ok := fetched[id]; ok {
			data, err := inflate(raw, r.dir[id].rawSize)
			if err != nil {
				return nil, err
			}
			out[i] = data
			continue
		}
		data, err := r.Component(ctx, id)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// ReadKind returns the kind of the component file at key with a single
// small suffix read (used to sanity-check index files).
func ReadKind(ctx context.Context, store objectstore.Store, key string) (Kind, error) {
	tail, err := store.GetRange(ctx, key, -24, 0)
	if err != nil {
		return 0, err
	}
	if len(tail) < 16 || !bytes.Equal(tail[len(tail)-4:], magic) {
		return 0, fmt.Errorf("component: %s: bad magic", key)
	}
	// The kind byte is the last byte of the directory, just before
	// the 16-byte (dirLen + size) trailer fields.
	if len(tail) < 17 {
		return 0, fmt.Errorf("component: %s: truncated", key)
	}
	return Kind(tail[len(tail)-17]), nil
}
