package adaptive

import (
	"math/rand"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/simtime"
)

func testLedger(opts LedgerOptions) (*Ledger, *simtime.VirtualClock) {
	clock := simtime.NewVirtualClock()
	opts.Clock = clock
	return NewLedger(opts), clock
}

func TestLedgerRecordAndDecay(t *testing.T) {
	l, clock := testLedger(LedgerOptions{HalfLife: time.Minute})
	l.Record("col", "a", 4)
	if got := l.Heat("col", "a"); got != 4*heatScale {
		t.Fatalf("heat = %d, want %d", got, 4*heatScale)
	}
	if got := l.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	// One half-life halves, two quarter.
	clock.Advance(time.Minute)
	if got := l.Heat("col", "a"); got != 2*heatScale {
		t.Fatalf("after one half-life heat = %d, want %d", got, 2*heatScale)
	}
	clock.Advance(time.Minute)
	if got := l.Total(); got != 1 {
		t.Fatalf("after two half-lives total = %d, want 1", got)
	}
	// Unknown cells are cold.
	if got := l.Heat("col", "zzz"); got != 0 {
		t.Fatalf("unknown cell heat = %d", got)
	}
}

// TestLedgerPermutationDeterminism pins the fuzz target's core claim:
// observations within one decay period commute exactly.
func TestLedgerPermutationDeterminism(t *testing.T) {
	type rec struct {
		col, path string
		w         uint64
	}
	var recs []rec
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		recs = append(recs, rec{
			col:  string(rune('a' + rng.Intn(3))),
			path: string(rune('p' + rng.Intn(5))),
			w:    uint64(rng.Intn(4) + 1),
		})
	}
	run := func(perm []int) []HeatEntry {
		l, _ := testLedger(LedgerOptions{HalfLife: time.Minute})
		for _, i := range perm {
			l.Record(recs[i].col, recs[i].path, recs[i].w)
		}
		return l.Snapshot()
	}
	base := make([]int, len(recs))
	for i := range base {
		base[i] = i
	}
	want := run(base)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(recs))
		got := run(perm)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d cells, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cell %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLedgerEvictionKeepsHottest(t *testing.T) {
	l, _ := testLedger(LedgerOptions{HalfLife: time.Minute, MaxKeys: 4})
	var violations int
	l.evictCheck = func(minKept, maxDropped uint64) {
		if maxDropped > minKept {
			violations++
		}
	}
	for i := 0; i < 16; i++ {
		// File i arrives with i+1 observations: later files are hotter.
		l.Record("col", string(rune('a'+i)), uint64(i+1))
	}
	if violations > 0 {
		t.Fatalf("%d evictions dropped hotter cells than they kept", violations)
	}
	if got := l.Len(); got > 4 {
		t.Fatalf("len = %d after eviction, want <= 4", got)
	}
	snap := l.Snapshot()
	// The hottest file (the last) must have survived.
	if len(snap) == 0 || snap[0].Key.Path != string(rune('a'+15)) {
		t.Fatalf("hottest cell evicted; snapshot head = %+v", snap)
	}
}

func TestLedgerObserveSearch(t *testing.T) {
	l, clock := testLedger(LedgerOptions{HalfLife: time.Minute})
	var obs core.HeatObserver = l // the ledger is a heat observer
	obs.ObserveSearch(core.SearchHeat{
		Units: []core.QueryHeat{{
			Column: "msg",
			Kind:   component.KindFM,
			Files: []core.HeatFile{
				{Path: "f1", Rows: 10, Covered: true},
				{Path: "f2", Rows: 20, Covered: false},
			},
		}},
		Latency: 250 * time.Millisecond,
	})
	if !l.EverQueried("msg") {
		t.Fatal("msg not marked queried")
	}
	if l.EverQueried("other") {
		t.Fatal("other marked queried")
	}
	if got := l.Heat("msg", "f1"); got != heatScale {
		t.Fatalf("f1 heat = %d, want %d", got, heatScale)
	}
	if got := l.MeanLatency("msg"); got != 250*time.Millisecond {
		t.Fatalf("mean latency = %v", got)
	}
	// Rate: one query in the ledger, half-life 60s → ~ln2/60 qps.
	rate := l.QueryRate("msg")
	if rate < 0.01 || rate > 0.02 {
		t.Fatalf("query rate = %f, want ~0.0116", rate)
	}
	// Decay erases heat but never the ever-queried flag.
	clock.Advance(65 * time.Minute)
	if l.Heat("msg", "f1") != 0 {
		t.Fatal("heat survived 65 half-lives")
	}
	if !l.EverQueried("msg") {
		t.Fatal("ever-queried flag decayed")
	}
}

func TestLedgerProbeRing(t *testing.T) {
	l, _ := testLedger(LedgerOptions{MaxVectors: 3})
	for i := 0; i < 5; i++ {
		l.ObserveVectorQuery("vec", []float32{float32(i)}, 8)
	}
	vecs, nprobe, seen := l.Probes("vec")
	if seen != 5 || nprobe != 8 {
		t.Fatalf("seen=%d nprobe=%d", seen, nprobe)
	}
	if len(vecs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(vecs))
	}
	held := make(map[float32]bool)
	for _, v := range vecs {
		held[v[0]] = true
	}
	// The ring keeps the 3 most recent embeddings (2, 3, 4).
	for _, want := range []float32{2, 3, 4} {
		if !held[want] {
			t.Fatalf("ring %v missing %v", vecs, want)
		}
	}
	if v, _, s := l.Probes("none"); v != nil || s != 0 {
		t.Fatal("unknown column has probes")
	}
}
