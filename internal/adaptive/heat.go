// Package adaptive closes the loop between serving and maintenance:
// a decayed heat ledger taps the query stream (core.HeatObserver),
// a policy reorders the ingest scheduler's backlog by heat ×
// rows-unindexed and drives progressive IVF-PQ refinement, and a TCO
// autopilot feeds live measurements into the paper's §VII phase
// diagram to decide, per column, whether indexing pays off at all.
package adaptive

import (
	"sort"
	"sync"
	"time"

	"rottnest/internal/core"
	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// heatScale is the fixed-point weight one observation adds to a cell.
// Decay halves integer heat per elapsed half-life (a right shift), so
// the scale bounds how many half-lives a single observation stays
// visible: 20 shifts to zero.
const heatScale = 1 << 20

// Key addresses one heat cell: a column and one of its data files.
type Key struct {
	Column string
	Path   string
}

// LedgerOptions configure a Ledger.
type LedgerOptions struct {
	// HalfLife is the decay half-life of recorded heat. Defaults to
	// 10 minutes.
	HalfLife time.Duration
	// MaxKeys bounds the number of live cells; eviction keeps the
	// hottest. Defaults to 4096.
	MaxKeys int
	// MaxVectors bounds the per-column ring of retained probe
	// embeddings. Defaults to 64.
	MaxVectors int
	// Clock supplies time; defaults to the real clock.
	Clock simtime.Clock
}

func (o LedgerOptions) withDefaults() LedgerOptions {
	if o.HalfLife <= 0 {
		o.HalfLife = 10 * time.Minute
	}
	if o.MaxKeys <= 0 {
		o.MaxKeys = 4096
	}
	if o.MaxVectors <= 0 {
		o.MaxVectors = 64
	}
	if o.Clock == nil {
		o.Clock = simtime.RealClock{}
	}
	return o
}

// cell is one (column, path) heat accumulator. Heat decays by integer
// halving once per elapsed half-life period: updates within the same
// period are plain commutative additions, so any permutation of
// same-period observations yields bit-identical state — the property
// FuzzHeatLedger pins.
type cell struct {
	heat   uint64
	period int64
}

func (c *cell) decayTo(p int64) {
	if d := p - c.period; d > 0 {
		if d >= 64 {
			c.heat = 0
		} else {
			c.heat >>= uint(d)
		}
	}
	c.period = p
}

// colStat aggregates per-column query traffic with the same decay.
type colStat struct {
	queries uint64 // heatScale per query, decayed
	latency uint64 // nanoseconds summed per query, decayed
	period  int64

	ever       bool        // a query has referenced the column at least once
	probes     [][]float32 // ring of recent vector-query embeddings
	probeNext  int
	probesSeen uint64 // monotonic, never decayed
	nprobe     int    // most recent probe width
}

func (s *colStat) decayTo(p int64) {
	if d := p - s.period; d > 0 {
		if d >= 64 {
			s.queries, s.latency = 0, 0
		} else {
			s.queries >>= uint(d)
			s.latency >>= uint(d)
		}
	}
	s.period = p
}

// Ledger is the decayed per-(column, file) heat ledger fed by the
// query stream. It implements core.HeatObserver; install it on the
// serving client with SetHeatObserver and hand it to a Policy.
type Ledger struct {
	opts  LedgerOptions
	epoch time.Time

	mu    sync.Mutex
	cells map[Key]*cell
	cols  map[string]*colStat

	reg          *obs.Registry
	observations *obs.Counter
	evictions    *obs.Counter
	keysGauge    *obs.Gauge
	totalGauge   *obs.Gauge

	// evictCheck, when set (tests), receives the minimum kept and
	// maximum dropped heat of each eviction pass.
	evictCheck func(minKept, maxDropped uint64)
}

// NewLedger returns an empty ledger.
func NewLedger(opts LedgerOptions) *Ledger {
	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	return &Ledger{
		opts:         opts,
		epoch:        opts.Clock.Now(),
		cells:        make(map[Key]*cell),
		cols:         make(map[string]*colStat),
		reg:          reg,
		observations: reg.Counter("adaptive.observations"),
		evictions:    reg.Counter("adaptive.evictions"),
		keysGauge:    reg.Gauge("adaptive.heat_keys"),
		totalGauge:   reg.Gauge("adaptive.heat_total"),
	}
}

// Registry exposes the ledger's metrics for Client.AttachRegistry.
func (l *Ledger) Registry() *obs.Registry { return l.reg }

// now returns the current decay period.
func (l *Ledger) now() int64 {
	return int64(l.opts.Clock.Now().Sub(l.epoch) / l.opts.HalfLife)
}

// ObserveSearch implements core.HeatObserver: every file a query's
// plan touched gains one observation of heat, and the column's query
// count and latency aggregate updates.
func (l *Ledger) ObserveSearch(sh core.SearchHeat) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.now()
	cols := make(map[string]bool, len(sh.Units))
	for _, u := range sh.Units {
		cols[u.Column] = true
		for _, f := range u.Files {
			l.record(Key{Column: u.Column, Path: f.Path}, p, heatScale)
		}
	}
	lat := sh.Latency
	if lat < 0 {
		lat = 0
	}
	for col := range cols {
		s := l.col(col)
		s.decayTo(p)
		s.ever = true
		s.queries += heatScale
		s.latency += uint64(lat)
	}
	l.observations.Inc()
	l.evictLocked(p)
	l.publishLocked(p)
}

// ObserveVectorQuery implements core.HeatObserver: retain the query
// embedding (copied) for refine-cell selection.
func (l *Ledger) ObserveVectorQuery(column string, vec []float32, nprobe int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.col(column)
	s.ever = true
	v := append([]float32(nil), vec...)
	if len(s.probes) < l.opts.MaxVectors {
		s.probes = append(s.probes, v)
	} else {
		s.probes[s.probeNext] = v
	}
	s.probeNext = (s.probeNext + 1) % l.opts.MaxVectors
	s.probesSeen++
	s.nprobe = nprobe
}

// Record adds weight observations of heat to (column, path) directly —
// the taps go through ObserveSearch; this is for tests and replays.
func (l *Ledger) Record(column, path string, weight uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.now()
	l.record(Key{Column: column, Path: path}, p, weight*heatScale)
	s := l.col(column)
	s.ever = true
	l.observations.Inc()
	l.evictLocked(p)
	l.publishLocked(p)
}

func (l *Ledger) col(name string) *colStat {
	s := l.cols[name]
	if s == nil {
		s = &colStat{}
		l.cols[name] = s
	}
	return s
}

func (l *Ledger) record(k Key, p int64, w uint64) {
	c := l.cells[k]
	if c == nil {
		c = &cell{period: p}
		l.cells[k] = c
	}
	c.decayTo(p)
	c.heat += w
}

// evictLocked drops the coldest cells once the ledger exceeds
// MaxKeys, keeping the hottest (ties broken by key, ascending, so the
// survivor set is deterministic).
func (l *Ledger) evictLocked(p int64) {
	if len(l.cells) <= l.opts.MaxKeys {
		return
	}
	type kc struct {
		k Key
		h uint64
	}
	all := make([]kc, 0, len(l.cells))
	for k, c := range l.cells {
		c.decayTo(p)
		all = append(all, kc{k: k, h: c.heat})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].h != all[b].h {
			return all[a].h > all[b].h
		}
		if all[a].k.Column != all[b].k.Column {
			return all[a].k.Column < all[b].k.Column
		}
		return all[a].k.Path < all[b].k.Path
	})
	var maxDropped uint64
	for _, e := range all[l.opts.MaxKeys:] {
		if e.h > maxDropped {
			maxDropped = e.h
		}
		delete(l.cells, e.k)
		l.evictions.Inc()
	}
	if l.evictCheck != nil {
		l.evictCheck(all[l.opts.MaxKeys-1].h, maxDropped)
	}
}

func (l *Ledger) publishLocked(p int64) {
	l.keysGauge.Set(int64(len(l.cells)))
	var total uint64
	for _, c := range l.cells {
		c.decayTo(p)
		total += c.heat
	}
	l.totalGauge.Set(int64(total / heatScale))
}

// Heat returns the decayed heat of (column, path) in observation
// units scaled by heatScale (0 for unknown cells).
func (l *Ledger) Heat(column, path string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.cells[Key{Column: column, Path: path}]
	if c == nil {
		return 0
	}
	c.decayTo(l.now())
	return c.heat
}

// Total returns the ledger-wide decayed heat in whole observations.
func (l *Ledger) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.now()
	var total uint64
	for _, c := range l.cells {
		c.decayTo(p)
		total += c.heat
	}
	return total / heatScale
}

// Len returns the number of live cells.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cells)
}

// HeatEntry is one cell of a Snapshot.
type HeatEntry struct {
	Key  Key
	Heat uint64
}

// Snapshot returns every live cell ordered by heat (descending) with
// a deterministic key tie-break.
func (l *Ledger) Snapshot() []HeatEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.now()
	out := make([]HeatEntry, 0, len(l.cells))
	for k, c := range l.cells {
		c.decayTo(p)
		out = append(out, HeatEntry{Key: k, Heat: c.heat})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Heat != out[b].Heat {
			return out[a].Heat > out[b].Heat
		}
		if out[a].Key.Column != out[b].Key.Column {
			return out[a].Key.Column < out[b].Key.Column
		}
		return out[a].Key.Path < out[b].Key.Path
	})
	return out
}

// EverQueried reports whether any query has ever referenced the
// column. Unlike heat this never decays: the autopilot uses it to
// demote columns no query has touched, and a single query permanently
// clears the flag.
func (l *Ledger) EverQueried(column string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.cols[column]
	return s != nil && s.ever
}

// QueryRate estimates the column's sustained queries per second from
// its decayed query count: a steady rate r accumulates ~r·HalfLife/ln2
// decayed observations, so the inverse maps the count back to a rate.
func (l *Ledger) QueryRate(column string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.cols[column]
	if s == nil {
		return 0
	}
	s.decayTo(l.now())
	const ln2 = 0.6931471805599453
	return float64(s.queries) / heatScale * ln2 / l.opts.HalfLife.Seconds()
}

// MeanLatency returns the decayed mean query latency of the column
// (0 with no recorded queries).
func (l *Ledger) MeanLatency(column string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.cols[column]
	if s == nil {
		return 0
	}
	s.decayTo(l.now())
	if s.queries == 0 {
		return 0
	}
	return time.Duration(float64(s.latency) / (float64(s.queries) / heatScale))
}

// Probes returns a copy of the column's retained probe embeddings,
// the probe width the most recent query used, and the monotonic count
// of vector queries observed for the column.
func (l *Ledger) Probes(column string) (vecs [][]float32, nprobe int, seen uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.cols[column]
	if s == nil {
		return nil, 0, 0
	}
	vecs = make([][]float32, len(s.probes))
	copy(vecs, s.probes)
	return vecs, s.nprobe, s.probesSeen
}

var _ core.HeatObserver = (*Ledger)(nil)
