package adaptive

import (
	"testing"
	"time"
)

// FuzzHeatLedger drives the ledger with a byte-scripted op sequence
// (record heat into a tiny key space with varied weights, advance the
// virtual clock by fractions of the half-life) and checks the decay /
// record / evict invariants after every op: the live cell count never
// exceeds MaxKeys, total heat never exceeds the weight recorded (decay
// only loses heat, never invents it), and every eviction pass keeps
// cells at least as hot as any it drops. An uncapped shadow ledger
// replays each decay period's records in reverse to pin that
// same-period observations commute — the snapshots must match bit for
// bit. (The capped ledger is excluded from that check on purpose:
// eviction forgets history, so replay order matters once a key is
// dropped and re-created.)
func FuzzHeatLedger(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x04, 0xff})
	f.Add([]byte{0xb0, 0x00, 0xb1, 0x01, 0xb2, 0x02, 0xb3, 0x03})
	f.Add([]byte{0x11, 0x11, 0x11, 0xe4, 0x11, 0x22, 0x33, 0xe8, 0x44})
	f.Fuzz(func(t *testing.T, script []byte) {
		const maxKeys = 8
		capped, clock := testLedger(LedgerOptions{HalfLife: time.Minute, MaxKeys: maxKeys})
		free, freeClock := testLedger(LedgerOptions{HalfLife: time.Minute})
		shadow, shadowClock := testLedger(LedgerOptions{HalfLife: time.Minute})
		var violations int
		capped.evictCheck = func(minKept, maxDropped uint64) {
			if maxDropped > minKept {
				violations++
			}
		}

		type rec struct {
			col, path string
			w         uint64
		}
		var pending []rec // current decay period's records, not yet replayed
		flush := func() {
			for i := len(pending) - 1; i >= 0; i-- {
				shadow.Record(pending[i].col, pending[i].path, pending[i].w)
			}
			pending = pending[:0]
		}

		var recorded uint64 // total whole observations ever recorded
		for _, op := range script {
			if op>>5 == 0x7 { // top three bits set: advance time
				d := time.Duration(op&0x1f) * (time.Minute / 8)
				flush() // period may roll over; commute only within one
				clock.Advance(d)
				freeClock.Advance(d)
				shadowClock.Advance(d)
			} else {
				r := rec{
					col:  string(rune('a' + (op>>5)&0x3)),
					path: string(rune('p' + (op>>2)&0x7)),
					w:    uint64(op&0x3) + 1,
				}
				capped.Record(r.col, r.path, r.w)
				free.Record(r.col, r.path, r.w)
				pending = append(pending, r)
				recorded += r.w
			}
			if got := capped.Len(); got > maxKeys {
				t.Fatalf("ledger holds %d cells, cap %d", got, maxKeys)
			}
			for _, l := range []*Ledger{capped, free} {
				if got := l.Total(); got > recorded {
					t.Fatalf("total heat %d exceeds %d recorded (negative decay?)", got, recorded)
				}
			}
			if violations > 0 {
				t.Fatal("eviction dropped a cell hotter than one it kept")
			}
		}
		flush()

		// Same-period permutation determinism: the reverse-replayed
		// shadow must be bit-identical to the uncapped original.
		want, got := free.Snapshot(), shadow.Snapshot()
		if len(want) != len(got) {
			t.Fatalf("shadow ledger has %d cells, want %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("cell %d diverged under permuted order: %+v vs %+v", i, got[i], want[i])
			}
		}
	})
}
