package adaptive

import (
	"context"
	"sync"
	"time"

	"rottnest/internal/core"
	"rottnest/internal/simtime"
	"rottnest/internal/tco"
)

// Decision is the autopilot's per-column verdict, derived from the
// paper's §VII phase diagram evaluated at the column's live operating
// point.
type Decision int

const (
	// DecideIndex keeps the column on the lazy-indexing path
	// (Rottnest wins the phase diagram, or no verdict yet).
	DecideIndex Decision = iota
	// DecideScan demotes the column to the scan path: index jobs are
	// skipped and existing entries are dropped and flagged for
	// vacuum. Never-queried columns always land here.
	DecideScan
	// DecideDeep promotes the column to deeper indexing (the
	// copy-data region of the diagram — query traffic so hot that
	// construction cost is irrelevant). The policy responds by
	// skipping the coarse first pass and refining more aggressively.
	DecideDeep
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecideScan:
		return "scan"
	case DecideDeep:
		return "deep"
	default:
		return "index"
	}
}

// AutopilotOptions configure an Autopilot.
type AutopilotOptions struct {
	// Pricing is the cost model; defaults to tco.DefaultPricing().
	Pricing tco.Pricing
	// HorizonMonths is the operating horizon the phase diagram is
	// evaluated over. Defaults to 1.
	HorizonMonths float64
	// ScanBytesPerSec models one worker's brute-force scan
	// throughput. Defaults to 1 GiB/s.
	ScanBytesPerSec float64
	// BruteForceWorkers is the scan cluster size. Defaults to 8.
	BruteForceWorkers int
	// IndexBytesPerSec models one worker's index-build throughput.
	// Defaults to 64 MiB/s.
	IndexBytesPerSec float64
	// RefreshEvery rate-limits Refresh; calls inside the window are
	// no-ops. Defaults to 30s. Negative refreshes on every call.
	RefreshEvery time.Duration
	// ScaleFactor linearly extrapolates the measured byte- and
	// build-derived quantities to deployment scale before the phase
	// diagram is evaluated, exactly as the paper's Section VII-D2
	// bridges laptop measurements to dataset scale. Defaults to 1
	// (decide at the measured size).
	ScaleFactor float64
	// Clock supplies time for the refresh window; defaults to the
	// real clock.
	Clock simtime.Clock
}

func (o AutopilotOptions) withDefaults() AutopilotOptions {
	if o.Pricing == (tco.Pricing{}) {
		o.Pricing = tco.DefaultPricing()
	}
	if o.HorizonMonths <= 0 {
		o.HorizonMonths = 1
	}
	if o.ScanBytesPerSec <= 0 {
		o.ScanBytesPerSec = 1 << 30
	}
	if o.BruteForceWorkers <= 0 {
		o.BruteForceWorkers = 8
	}
	if o.IndexBytesPerSec <= 0 {
		o.IndexBytesPerSec = 64 << 20
	}
	if o.RefreshEvery == 0 {
		o.RefreshEvery = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = simtime.RealClock{}
	}
	return o
}

// Autopilot turns tco's offline phase diagram into a live per-column
// policy: each refresh feeds measured sizes and the ledger's observed
// query rates and latencies into tco.Measurement, asks
// tco.Params.Best which approach wins at the column's operating
// point, and exposes the verdict to the scheduler policy.
type Autopilot struct {
	opts   AutopilotOptions
	ledger *Ledger
	client *core.Client
	specs  []core.IndexSpec

	mu          sync.Mutex
	decisions   map[string]Decision
	lastRefresh time.Time
	refreshed   bool
}

// NewAutopilot returns an autopilot deciding over the given specs'
// columns, reading live state from the client and query traffic from
// the ledger.
func NewAutopilot(client *core.Client, ledger *Ledger, specs []core.IndexSpec, opts AutopilotOptions) *Autopilot {
	return &Autopilot{
		opts:      opts.withDefaults(),
		ledger:    ledger,
		client:    client,
		specs:     append([]core.IndexSpec(nil), specs...),
		decisions: make(map[string]Decision),
	}
}

// Decision returns the column's current verdict. Columns without a
// verdict (before the first refresh) default to DecideIndex, so the
// autopilot can only demote from observed evidence.
func (a *Autopilot) Decision(column string) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.refreshed {
		return DecideIndex
	}
	return a.decisions[column]
}

// Refresh re-evaluates every column, rate-limited by RefreshEvery.
func (a *Autopilot) Refresh(ctx context.Context) error {
	a.mu.Lock()
	now := a.opts.Clock.Now()
	if a.refreshed && a.opts.RefreshEvery > 0 && now.Sub(a.lastRefresh) < a.opts.RefreshEvery {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()

	snap, err := a.client.Table().Snapshot(ctx)
	if err != nil {
		return err
	}
	var rawBytes int64
	for _, f := range snap.Files {
		rawBytes += f.Size
	}
	statuses, err := a.client.Status(ctx)
	if err != nil {
		return err
	}
	indexBytes := make(map[string]int64)
	for _, st := range statuses {
		indexBytes[st.Column] += st.IndexBytes
	}
	// Global mean search latency from the client's own histogram, the
	// fallback when a column has no per-column latency yet.
	globalLat := time.Duration(a.client.Metrics().Histograms["search.latency_ns"].Mean())

	decisions := make(map[string]Decision, len(a.specs))
	for _, spec := range a.specs {
		col := spec.Column
		if !a.ledger.EverQueried(col) {
			// No query has ever touched the column: indexing it buys
			// nothing. Skip the jobs, flag existing entries for vacuum.
			decisions[col] = DecideScan
			continue
		}
		lat := a.ledger.MeanLatency(col)
		if lat <= 0 {
			lat = globalLat
		}
		if lat <= 0 {
			lat = 100 * time.Millisecond
		}
		ib := indexBytes[col]
		if ib == 0 {
			ib = rawBytes / 10 // pre-build estimate
		}
		m := tco.Measurement{
			Pricing:                a.opts.Pricing,
			RawBytes:               rawBytes,
			IndexBytes:             ib,
			CopyBytes:              rawBytes + ib,
			IndexSeconds:           float64(rawBytes) / a.opts.IndexBytesPerSec,
			RottnestQuerySeconds:   lat.Seconds(),
			BruteForceWorkers:      a.opts.BruteForceWorkers,
			BruteForceQuerySeconds: float64(rawBytes) / a.opts.ScanBytesPerSec / float64(a.opts.BruteForceWorkers),
			ScaleFactor:            a.opts.ScaleFactor,
		}
		const secondsPerMonth = 730 * 3600
		queries := a.ledger.QueryRate(col) * secondsPerMonth * a.opts.HorizonMonths
		switch m.Params().Best(a.opts.HorizonMonths, queries) {
		case tco.BruteForce:
			decisions[col] = DecideScan
		case tco.CopyData:
			decisions[col] = DecideDeep
		default:
			decisions[col] = DecideIndex
		}
	}

	a.mu.Lock()
	a.decisions = decisions
	a.lastRefresh = now
	a.refreshed = true
	a.mu.Unlock()
	return nil
}
