package adaptive

import (
	"context"
	"sort"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ivfpq"
)

// BacklogFile is one unindexed file of an index backlog candidate.
type BacklogFile struct {
	Path string
	Rows int64
}

// IndexCandidate is one (column, kind) spec with uncovered files, as
// the scheduler sees its backlog.
type IndexCandidate struct {
	// Spec is the candidate's position in the scheduler's spec list.
	Spec int
	// IndexSpec identifies the index.
	IndexSpec core.IndexSpec
	// Uncovered lists the spec's unindexed snapshot files.
	Uncovered []BacklogFile
}

// IndexDecision is a policy's choice of the next index job.
type IndexDecision struct {
	// Spec is the chosen candidate's Spec value.
	Spec int
	// Paths, when non-nil, restricts the job to these files (the hot
	// subset); nil indexes the whole backlog.
	Paths []string
	// IVF, when non-nil, overrides the build options for vector
	// indexes (the coarse first pass).
	IVF *ivfpq.BuildOptions
}

// RefinePlan is a policy's choice of a progressive-refinement job.
type RefinePlan struct {
	Column   string
	IndexKey string
	Probes   [][]float32
	NProbe   int
	Opts     ivfpq.RefineOptions
}

// SchedulerPolicy is the hook the ingest scheduler consults before
// choosing work. All methods must be safe for concurrent use.
type SchedulerPolicy interface {
	// Tick runs periodic policy work (autopilot refresh), metered by
	// the scheduler as maintenance cost.
	Tick(ctx context.Context) error
	// DemotedToScan reports whether the spec's column should not be
	// indexed at all (queries scan instead).
	DemotedToScan(spec core.IndexSpec) bool
	// PlanIndex picks the next index job from the backlog, or ok =
	// false to decline (the scheduler then falls back to its static
	// largest-gap choice).
	PlanIndex(cands []IndexCandidate) (IndexDecision, bool)
	// PlanRefine proposes a progressive IVF-PQ refinement job, or ok
	// = false when probe traffic does not warrant one.
	PlanRefine(ctx context.Context, specs []core.IndexSpec) (RefinePlan, bool)
	// PlanDemote proposes dropping an existing index whose column the
	// autopilot demoted, or ok = false.
	PlanDemote(statuses []core.IndexStatus) (core.IndexSpec, bool)
}

// PolicyOptions configure a Policy.
type PolicyOptions struct {
	// Ledger is the heat ledger fed by the serving client. Required.
	Ledger *Ledger
	// Pilot, when set, supplies per-column scan/index/deep decisions;
	// nil never demotes.
	Pilot *Autopilot
	// Client executes metadata listings for refinement planning.
	// Required for PlanRefine.
	Client *core.Client
	// HotBatch caps how many hot files one index job covers. Defaults
	// to 64.
	HotBatch int
	// Coarse is the cheap first-pass build for vector indexes.
	// Defaults to a low-nlist, few-iteration configuration; set to an
	// explicit zero value to disable coarse-first builds.
	Coarse *ivfpq.BuildOptions
	// RefineAfterProbes is how many new vector queries a column must
	// see between refine passes. Defaults to 8.
	RefineAfterProbes uint64
	// Refine tunes the refinement pass itself.
	Refine ivfpq.RefineOptions
}

// Policy is the heat-driven scheduler policy: hot partitions index
// first (heat × rows), vector indexes build coarse then refine from
// probe traffic, and autopilot-demoted columns skip indexing.
type Policy struct {
	opts       PolicyOptions
	lastRefine map[string]uint64 // probesSeen at last proposed refine
}

// NewPolicy returns a policy over the ledger (and optional pilot).
func NewPolicy(opts PolicyOptions) *Policy {
	if opts.HotBatch <= 0 {
		opts.HotBatch = 64
	}
	if opts.Coarse == nil {
		opts.Coarse = &ivfpq.BuildOptions{NList: 32, KMeansIters: 4, TrainSample: 4096}
	}
	if opts.RefineAfterProbes == 0 {
		opts.RefineAfterProbes = 8
	}
	return &Policy{opts: opts, lastRefine: make(map[string]uint64)}
}

// Tick implements SchedulerPolicy.
func (p *Policy) Tick(ctx context.Context) error {
	if p.opts.Pilot == nil {
		return nil
	}
	return p.opts.Pilot.Refresh(ctx)
}

// DemotedToScan implements SchedulerPolicy.
func (p *Policy) DemotedToScan(spec core.IndexSpec) bool {
	if p.opts.Pilot == nil {
		return false
	}
	return p.opts.Pilot.Decision(spec.Column) == DecideScan
}

// PlanIndex implements SchedulerPolicy: candidates score by
// Σ (heat+1) × rows over their backlog, so heat dominates (one
// observation outweighs a million cold rows) but cold backlogs still
// drain when nothing is hot. The winning candidate indexes its hot
// files first when it has any.
func (p *Policy) PlanIndex(cands []IndexCandidate) (IndexDecision, bool) {
	best := -1
	var bestScore uint64
	for i, cand := range cands {
		var score uint64
		for _, f := range cand.Uncovered {
			rows := uint64(f.Rows)
			if rows == 0 {
				rows = 1
			}
			score += (p.opts.Ledger.Heat(cand.IndexSpec.Column, f.Path) + 1) * rows
		}
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return IndexDecision{}, false
	}
	cand := cands[best]
	dec := IndexDecision{Spec: cand.Spec}
	if cand.IndexSpec.Kind == component.KindIVFPQ {
		dec.IVF = p.opts.Coarse
	}
	// Hot subset: when some backlog files are hot, index the hottest
	// HotBatch of them now and leave the cold tail for later jobs —
	// time-to-searchable for hot data beats backlog completeness.
	type hot struct {
		path string
		heat uint64
	}
	var hots []hot
	for _, f := range cand.Uncovered {
		if h := p.opts.Ledger.Heat(cand.IndexSpec.Column, f.Path); h > 0 {
			hots = append(hots, hot{path: f.Path, heat: h})
		}
	}
	if len(hots) > 0 && len(hots) < len(cand.Uncovered) {
		sort.Slice(hots, func(a, b int) bool {
			if hots[a].heat != hots[b].heat {
				return hots[a].heat > hots[b].heat
			}
			return hots[a].path < hots[b].path
		})
		if len(hots) > p.opts.HotBatch {
			hots = hots[:p.opts.HotBatch]
		}
		dec.Paths = make([]string, len(hots))
		for i, h := range hots {
			dec.Paths[i] = h.path
		}
	}
	return dec, true
}

// PlanRefine implements SchedulerPolicy: once a vector column has
// accumulated RefineAfterProbes new queries since its last refine,
// propose re-clustering the hottest cells of its largest index file.
func (p *Policy) PlanRefine(ctx context.Context, specs []core.IndexSpec) (RefinePlan, bool) {
	if p.opts.Client == nil {
		return RefinePlan{}, false
	}
	for _, spec := range specs {
		if spec.Kind != component.KindIVFPQ || p.DemotedToScan(spec) {
			continue
		}
		probes, nprobe, seen := p.opts.Ledger.Probes(spec.Column)
		if len(probes) == 0 || seen-p.lastRefine[spec.Column] < p.opts.RefineAfterProbes {
			continue
		}
		entries, err := p.opts.Client.ListIndexes(ctx, spec.Column, spec.Kind)
		if err != nil || len(entries) == 0 {
			continue
		}
		// Refine the entry covering the most rows: it serves the bulk
		// of probe traffic. Deterministic tie-break by key.
		best := 0
		for i := 1; i < len(entries); i++ {
			if entries[i].Rows > entries[best].Rows ||
				(entries[i].Rows == entries[best].Rows && entries[i].IndexKey < entries[best].IndexKey) {
				best = i
			}
		}
		// Mark on propose, not on completion: a failed refine retries
		// only after fresh probe traffic, so a persistent failure
		// cannot starve index jobs.
		p.lastRefine[spec.Column] = seen
		return RefinePlan{
			Column:   spec.Column,
			IndexKey: entries[best].IndexKey,
			Probes:   probes,
			NProbe:   nprobe,
			Opts:     p.opts.Refine,
		}, true
	}
	return RefinePlan{}, false
}

// PlanDemote implements SchedulerPolicy: a demoted column that still
// owns index entries gets them dropped (and flagged for vacuum).
// Entries are only dropped for never-queried columns — a column whose
// operating point drifted back into the scan region merely stops
// getting new index jobs, so a rate oscillating around the phase
// boundary cannot thrash drop/rebuild cycles.
func (p *Policy) PlanDemote(statuses []core.IndexStatus) (core.IndexSpec, bool) {
	if p.opts.Pilot == nil {
		return core.IndexSpec{}, false
	}
	for _, st := range statuses {
		spec := core.IndexSpec{Column: st.Column, Kind: st.Kind}
		if st.Entries > 0 && p.DemotedToScan(spec) && !p.opts.Ledger.EverQueried(st.Column) {
			return spec, true
		}
	}
	return core.IndexSpec{}, false
}

var _ SchedulerPolicy = (*Policy)(nil)
