package objcache

import (
	"context"
	"fmt"
	"testing"
)

// FuzzObjCache drives the cache with a byte-scripted op sequence
// (insert/hit/invalidate/flush over a tiny key space with varied
// costs) and checks the structural invariants after every op: the
// resident byte total never exceeds the budget, stays equal to the
// sum over resident entries, and the byID index mirrors the LRU
// contents exactly.
func FuzzObjCache(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0x00, 0xc3, 0x04})
	f.Add([]byte{0xff, 0xff, 0x00, 0x80, 0x40, 0xc0, 0x01, 0x81})
	f.Fuzz(func(t *testing.T, script []byte) {
		c := New(256)
		ctx := context.Background()
		for _, op := range script {
			kind := fmt.Sprintf("k%d", (op>>4)&0x3)
			id := fmt.Sprintf("id%d", op&0xf)
			switch op >> 6 {
			case 0, 1: // Do with cost derived from the op byte
				cost := int64(op % 97)
				_, err := c.Do(ctx, kind, id, func(context.Context) (any, int64, error) {
					return op, cost, nil
				})
				if err != nil {
					t.Fatalf("Do: %v", err)
				}
			case 2:
				c.Invalidate(id)
			case 3:
				if op&0x3f == 0 {
					c.Flush()
				} else {
					c.Invalidate(id)
				}
			}
			checkInvariants(t, c)
		}
	})
}

func checkInvariants(t *testing.T, c *Cache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bytes > c.maxBytes {
		t.Fatalf("resident %d bytes over budget %d", c.bytes, c.maxBytes)
	}
	var sum int64
	count := 0
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*entry)
		sum += e.cost
		count++
		if c.items[e.ckey] != elem {
			t.Fatalf("items[%q] does not point at its LRU element", e.ckey)
		}
		if c.byID[e.id][e.ckey] != elem {
			t.Fatalf("byID[%q][%q] does not point at its LRU element", e.id, e.ckey)
		}
	}
	if sum != c.bytes {
		t.Fatalf("byte total %d != sum over entries %d", c.bytes, sum)
	}
	if count != len(c.items) {
		t.Fatalf("LRU has %d entries, items map has %d", count, len(c.items))
	}
	indexed := 0
	for _, forms := range c.byID {
		if len(forms) == 0 {
			t.Fatal("empty byID bucket not pruned")
		}
		indexed += len(forms)
	}
	if indexed != count {
		t.Fatalf("byID indexes %d entries, LRU has %d", indexed, count)
	}
}
