package objcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

func TestHitMissAndCounters(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	decodes := 0
	decode := func(ctx context.Context) (any, int64, error) {
		decodes++
		return "v", 10, nil
	}
	v, err := c.Do(ctx, "manifest", "k1", decode)
	if err != nil || v.(string) != "v" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	v, err = c.Do(ctx, "manifest", "k1", decode)
	if err != nil || v.(string) != "v" {
		t.Fatalf("repeat Do = %v, %v", v, err)
	}
	if decodes != 1 {
		t.Fatalf("decodes = %d, want 1", decodes)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counter("objcache.hits"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := snap.Counter("objcache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := snap.Counter("objcache.hits.manifest"); got != 1 {
		t.Errorf("per-kind hits = %d, want 1", got)
	}
	if c.Bytes() != 10 || c.Len() != 1 {
		t.Errorf("resident = %d bytes / %d entries, want 10 / 1", c.Bytes(), c.Len())
	}
}

func TestKindsAreDistinct(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	if _, err := c.Do(ctx, "a", "k", func(context.Context) (any, int64, error) { return 1, 1, nil }); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do(ctx, "b", "k", func(context.Context) (any, int64, error) { return 2, 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 2 {
		t.Fatalf("kind b value = %v, want 2 (kinds must not collide)", v)
	}
}

func TestInvalidateDropsAllFormsAndBumpsGeneration(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	for _, kind := range []string{"reader", "manifest", "fm"} {
		k := kind
		if _, err := c.Do(ctx, k, "idx1", func(context.Context) (any, int64, error) { return k, 5, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Do(ctx, "dv", "other", func(context.Context) (any, int64, error) { return "dv", 5, nil }); err != nil {
		t.Fatal(err)
	}
	g0 := c.Generation()
	if n := c.Invalidate("idx1"); n != 3 {
		t.Fatalf("Invalidate dropped %d, want 3", n)
	}
	if c.Generation() != g0+1 {
		t.Fatalf("generation = %d, want %d", c.Generation(), g0+1)
	}
	if c.Len() != 1 || c.Bytes() != 5 {
		t.Fatalf("after invalidate: %d entries / %d bytes, want 1 / 5", c.Len(), c.Bytes())
	}
	// Invalidating an id with nothing resident still bumps the
	// generation: the hook firing is what tests observe.
	if n := c.Invalidate("absent"); n != 0 {
		t.Fatalf("Invalidate(absent) dropped %d, want 0", n)
	}
	if c.Generation() != g0+2 {
		t.Fatalf("generation = %d, want %d", c.Generation(), g0+2)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counter("objcache.invalidations"); got != 2 {
		t.Errorf("invalidations = %d, want 2", got)
	}
	if got := snap.Counter("objcache.invalidations.fm"); got != 1 {
		t.Errorf("per-kind invalidations = %d, want 1", got)
	}
}

func TestInvalidationSuppressesInFlightInsert(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Do(ctx, "dv", "k", func(context.Context) (any, int64, error) {
			close(started)
			<-release
			return "stale", 5, nil
		})
	}()
	<-started
	c.Invalidate("k")
	close(release)
	<-done
	if c.Len() != 0 {
		t.Fatalf("stale decode was inserted after invalidation (%d entries)", c.Len())
	}
}

func TestLRUEvictionByCost(t *testing.T) {
	c := New(100)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("k%d", i)
		if _, err := c.Do(ctx, "x", id, func(context.Context) (any, int64, error) { return id, 20, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Bytes() > 100 {
		t.Fatalf("resident %d bytes over budget 100", c.Bytes())
	}
	if got := c.Registry().Snapshot().Counter("objcache.evictions"); got != 5 {
		t.Errorf("evictions = %d, want 5", got)
	}
	// Oversized values are never cached.
	if _, err := c.Do(ctx, "x", "big", func(context.Context) (any, int64, error) { return "big", 26, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.lookup(compositeKey("x", "big")); ok {
		t.Error("oversized value was cached")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	decode := func(context.Context) (any, int64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return "ok", 1, nil
	}
	if _, err := c.Do(ctx, "x", "k", decode); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, err := c.Do(ctx, "x", "k", decode)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("second Do = %v, %v", v, err)
	}
}

func TestSingleflightSharesDecodeAndChargesFollowers(t *testing.T) {
	c := New(1 << 20)
	var decodes atomic.Int64
	const workers = 8
	sessions := make([]*simtime.Session, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		sessions[i] = simtime.NewSession()
		ctx := simtime.With(context.Background(), sessions[i])
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			v, err := c.Do(ctx, "fm", "k", func(ctx context.Context) (any, int64, error) {
				decodes.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				simtime.Charge(ctx, 3*time.Millisecond)
				return "v", 1, nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}(ctx)
	}
	wg.Wait()
	if decodes.Load() != 1 {
		t.Fatalf("decodes = %d, want 1 (singleflight)", decodes.Load())
	}
	// Every session — leader and followers alike — paid the decode's
	// virtual cost.
	for i, s := range sessions {
		if s.Elapsed() != 3*time.Millisecond {
			t.Errorf("session %d elapsed = %v, want 3ms", i, s.Elapsed())
		}
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	ctx := context.Background()
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := c.Do(ctx, "x", "k", func(context.Context) (any, int64, error) {
			calls++
			return "v", 1, nil
		})
		if err != nil || v.(string) != "v" {
			t.Fatalf("nil Do = %v, %v", v, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized (%d calls)", calls)
	}
	c.Invalidate("k")
	c.Flush()
	if c.Generation() != 0 || c.Bytes() != 0 || c.Len() != 0 || c.Registry() != nil {
		t.Error("nil accessors not zero")
	}
}

func TestFlush(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	if _, err := c.Do(ctx, "x", "k", func(context.Context) (any, int64, error) { return "v", 7, nil }); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after flush: %d entries / %d bytes", c.Len(), c.Bytes())
	}
}
