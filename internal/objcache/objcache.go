// Package objcache is Rottnest's decoded-object cache: a
// byte-budgeted, generation-aware LRU over values that are expensive
// to reconstruct per query — parsed component directories, inflated
// manifests, FM-index/trie/IVF-PQ open results, deletion vectors.
//
// The byte-level CachedStore (objectstore) removes repeat GETs; this
// layer removes the decode CPU and the request fan above them, which
// is what makes a warm serving node latency-competitive (Airphant's
// resident-index argument). It is safe for exactly the reason the
// byte cache is: every cached object is immutable under its key —
// data files, deletion vectors, and index files all get fresh
// crypto-random names, and logs commit with PutIfAbsent — so a
// decoded value can only go stale by deletion, and the protocol
// operations that delete (vacuum, lake vacuum) know exactly which
// keys die and call Invalidate.
//
// Entries are keyed by (kind, id): kind names the decoded type
// ("reader", "manifest", "fm", ...), id is the underlying object key.
// Invalidation is by id alone, dropping every decoded form of the
// object at once. Each Invalidate call bumps a generation counter —
// whether or not anything was resident — so tests can assert that
// every invalidation hook actually fires, and so decodes that were
// in flight when the invalidation landed are not inserted afterwards.
package objcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// DefaultMaxBytes is the cache's default cost budget.
const DefaultMaxBytes = 64 << 20

// Cache is a concurrency-safe decoded-object cache with singleflight
// on decode and LRU eviction on a caller-supplied cost estimate.
type Cache struct {
	maxBytes int64
	gen      atomic.Int64

	// Aggregate counters plus a lazily-built per-kind set, all under
	// "objcache.*" names in one registry.
	reg           *obs.Registry
	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	coalesced     *obs.Counter
	resident      *obs.Gauge
	kmu           sync.Mutex
	kinds         map[string]*kindCounters

	fmu     sync.Mutex
	flights map[string]*flight

	mu    sync.Mutex
	lru   *list.List               // front = most recently used
	items map[string]*list.Element // composite (kind, id) key -> element
	byID  map[string]map[string]*list.Element
	bytes int64
}

type kindCounters struct {
	hits, misses, evictions, invalidations *obs.Counter
}

type entry struct {
	ckey string
	id   string
	kind string
	val  any
	cost int64
}

// flight is one in-flight decode; followers wait on it and are
// charged the leader's virtual decode cost.
type flight struct {
	wg    sync.WaitGroup
	val   any
	err   error
	vcost time.Duration
}

// New returns a cache with the given cost budget (<= 0 means
// DefaultMaxBytes).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	reg := obs.NewRegistry()
	return &Cache{
		maxBytes:      maxBytes,
		reg:           reg,
		hits:          reg.Counter("objcache.hits"),
		misses:        reg.Counter("objcache.misses"),
		evictions:     reg.Counter("objcache.evictions"),
		invalidations: reg.Counter("objcache.invalidations"),
		coalesced:     reg.Counter("objcache.coalesced"),
		resident:      reg.Gauge("objcache.bytes"),
		kinds:         make(map[string]*kindCounters),
		flights:       make(map[string]*flight),
		lru:           list.New(),
		items:         make(map[string]*list.Element),
		byID:          make(map[string]map[string]*list.Element),
	}
}

// Registry returns the cache's metrics registry ("objcache.*" names).
// Nil-safe: a disabled cache yields a nil registry, whose methods are
// themselves nil-safe.
func (c *Cache) Registry() *obs.Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Generation returns the invalidation generation: the number of
// Invalidate calls so far. Tests assert hooks fired by watching it.
func (c *Cache) Generation() int64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// Bytes returns the current resident cost total.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// forKind returns the per-kind counter set, creating it on first use.
func (c *Cache) forKind(kind string) *kindCounters {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	k := c.kinds[kind]
	if k == nil {
		k = &kindCounters{
			hits:          c.reg.Counter("objcache.hits." + kind),
			misses:        c.reg.Counter("objcache.misses." + kind),
			evictions:     c.reg.Counter("objcache.evictions." + kind),
			invalidations: c.reg.Counter("objcache.invalidations." + kind),
		}
		c.kinds[kind] = k
	}
	return k
}

func compositeKey(kind, id string) string { return kind + "\x00" + id }

// Do returns the cached value for (kind, id), decoding it at most
// once across concurrent callers. decode returns the value and a cost
// estimate in bytes for the LRU budget. Nil-safe: a nil cache just
// runs decode.
//
// Virtual-time accounting: the decode leader's store reads charge its
// own session as usual; a follower that rode the leader's in-flight
// decode is charged the leader's virtual decode duration (it waited
// exactly that long in model time, conservatively from the start). A
// hit charges nothing — the point of the cache.
func (c *Cache) Do(ctx context.Context, kind, id string, decode func(ctx context.Context) (any, int64, error)) (any, error) {
	if c == nil {
		v, _, err := decode(ctx)
		return v, err
	}
	ckey := compositeKey(kind, id)
	if v, ok := c.lookup(ckey); ok {
		c.hits.Inc()
		c.forKind(kind).hits.Inc()
		return v, nil
	}

	c.fmu.Lock()
	if f, ok := c.flights[ckey]; ok {
		c.fmu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, f.err
		}
		c.coalesced.Inc()
		simtime.Charge(ctx, f.vcost)
		return f.val, nil
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[ckey] = f
	c.fmu.Unlock()

	startGen := c.gen.Load()
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	val, cost, err := decode(ctx)
	f.val, f.err = val, err
	f.vcost = session.Elapsed() - startElapsed

	c.fmu.Lock()
	delete(c.flights, ckey)
	c.fmu.Unlock()
	f.wg.Done()

	if err != nil {
		return nil, err
	}
	c.misses.Inc()
	c.forKind(kind).misses.Inc()
	// An invalidation that landed while the decode was in flight may
	// target exactly this id; skipping the insert keeps the delete-only
	// invalidation contract race-free.
	if c.gen.Load() == startGen {
		c.insert(kind, id, ckey, val, cost)
	}
	return val, nil
}

// lookup promotes and returns a resident entry.
func (c *Cache) lookup(ckey string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.items[ckey]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(elem)
	return elem.Value.(*entry).val, true
}

// insert stores the value, evicting LRU entries to stay within the
// budget. Values costing more than a quarter of the budget are not
// cached (one oversized decode must not wipe the cache).
func (c *Cache) insert(kind, id, ckey string, val any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if cost > c.maxBytes/4 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[ckey]; ok {
		return // raced with another inserter; keep the resident copy
	}
	elem := c.lru.PushFront(&entry{ckey: ckey, id: id, kind: kind, val: val, cost: cost})
	c.items[ckey] = elem
	forms := c.byID[id]
	if forms == nil {
		forms = make(map[string]*list.Element)
		c.byID[id] = forms
	}
	forms[ckey] = elem
	c.bytes += cost
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.removeLocked(back)
		c.evictions.Inc()
		c.forKind(e.kind).evictions.Inc()
	}
	c.resident.Set(c.bytes)
}

func (c *Cache) removeLocked(elem *list.Element) {
	e := elem.Value.(*entry)
	c.lru.Remove(elem)
	delete(c.items, e.ckey)
	if forms := c.byID[e.id]; forms != nil {
		delete(forms, e.ckey)
		if len(forms) == 0 {
			delete(c.byID, e.id)
		}
	}
	c.bytes -= e.cost
}

// Invalidate drops every decoded form of the object id and bumps the
// generation counter (even when nothing was resident: the generation
// records that the hook fired, and suppresses insertion of decodes
// already in flight). It returns the number of entries dropped.
// Nil-safe.
func (c *Cache) Invalidate(id string) int {
	if c == nil {
		return 0
	}
	c.gen.Add(1)
	c.invalidations.Inc()
	c.mu.Lock()
	forms := c.byID[id]
	dropped := make([]*list.Element, 0, len(forms))
	for _, elem := range forms {
		dropped = append(dropped, elem)
	}
	for _, elem := range dropped {
		c.forKind(elem.Value.(*entry).kind).invalidations.Inc()
		c.removeLocked(elem)
	}
	c.resident.Set(c.bytes)
	c.mu.Unlock()
	return len(dropped)
}

// Flush drops every entry (counters and generation are kept).
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.lru.Init()
	c.items = make(map[string]*list.Element)
	c.byID = make(map[string]map[string]*list.Element)
	c.bytes = 0
	c.resident.Set(0)
	c.mu.Unlock()
}
