package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNormalizeRanges(t *testing.T) {
	cases := []struct {
		in, want []RowRange
	}{
		{nil, nil},
		{[]RowRange{{5, 5}}, []RowRange{}},
		{[]RowRange{{0, 10}}, []RowRange{{0, 10}}},
		{[]RowRange{{10, 20}, {0, 5}}, []RowRange{{0, 5}, {10, 20}}},
		{[]RowRange{{0, 5}, {5, 10}}, []RowRange{{0, 10}}},
		{[]RowRange{{0, 8}, {4, 12}, {20, 21}}, []RowRange{{0, 12}, {20, 21}}},
		{[]RowRange{{3, 2}, {1, 4}, {2, 6}}, []RowRange{{1, 6}}},
	}
	for _, c := range cases {
		got := NormalizeRanges(append([]RowRange(nil), c.in...))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("NormalizeRanges(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntersectUnionRanges(t *testing.T) {
	a := []RowRange{{0, 10}, {20, 30}}
	b := []RowRange{{5, 25}}
	if got, want := IntersectRanges(a, b), []RowRange{{5, 10}, {20, 25}}; !reflect.DeepEqual(got, want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	if got, want := UnionRanges(a, b), []RowRange{{0, 30}}; !reflect.DeepEqual(got, want) {
		t.Errorf("union = %v, want %v", got, want)
	}
	if got := IntersectRanges(a, nil); len(got) != 0 {
		t.Errorf("intersect with empty = %v, want empty", got)
	}
	if got, want := UnionRanges(nil, b), []RowRange{{5, 25}}; !reflect.DeepEqual(got, want) {
		t.Errorf("union with empty = %v, want %v", got, want)
	}
}

func TestRangesContainOverlapLen(t *testing.T) {
	rs := []RowRange{{2, 5}, {8, 10}}
	if RangesLen(rs) != 5 {
		t.Errorf("RangesLen = %d, want 5", RangesLen(rs))
	}
	for row, want := range map[int64]bool{1: false, 2: true, 4: true, 5: false, 8: true, 9: true, 10: false} {
		if got := RangesContain(rs, row); got != want {
			t.Errorf("RangesContain(%d) = %v, want %v", row, got, want)
		}
	}
	overlaps := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 2, false}, {0, 3, true}, {5, 8, false}, {4, 9, true}, {10, 12, false}, {3, 3, false},
	}
	for _, c := range overlaps {
		if got := RangesOverlap(rs, c.lo, c.hi); got != c.want {
			t.Errorf("RangesOverlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

// TestRangeOpsAgainstBitmap cross-checks the interval algebra against
// a naive per-row bitmap model on random inputs.
func TestRangeOpsAgainstBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const universe = 200
	randSet := func() []RowRange {
		var rs []RowRange
		for i := 0; i < rng.Intn(6); i++ {
			lo := rng.Int63n(universe)
			rs = append(rs, RowRange{Lo: lo, Hi: lo + rng.Int63n(40)})
		}
		return NormalizeRanges(rs)
	}
	bitmap := func(rs []RowRange) [universe + 50]bool {
		var m [universe + 50]bool
		for _, r := range rs {
			for i := r.Lo; i < r.Hi && int(i) < len(m); i++ {
				m[i] = true
			}
		}
		return m
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randSet(), randSet()
		ma, mb := bitmap(a), bitmap(b)
		inter, uni := IntersectRanges(a, b), UnionRanges(a, b)
		mi, mu := bitmap(inter), bitmap(uni)
		for row := 0; row < universe+50; row++ {
			if want := ma[row] && mb[row]; mi[row] != want {
				t.Fatalf("trial %d: intersect row %d = %v, want %v (a=%v b=%v)", trial, row, mi[row], want, a, b)
			}
			if want := ma[row] || mb[row]; mu[row] != want {
				t.Fatalf("trial %d: union row %d = %v, want %v (a=%v b=%v)", trial, row, mu[row], want, a, b)
			}
		}
	}
}
