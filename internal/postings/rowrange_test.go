package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNormalizeRanges(t *testing.T) {
	cases := []struct {
		in, want []RowRange
	}{
		{nil, nil},
		{[]RowRange{{5, 5}}, []RowRange{}},
		{[]RowRange{{0, 10}}, []RowRange{{0, 10}}},
		{[]RowRange{{10, 20}, {0, 5}}, []RowRange{{0, 5}, {10, 20}}},
		{[]RowRange{{0, 5}, {5, 10}}, []RowRange{{0, 10}}},
		{[]RowRange{{0, 8}, {4, 12}, {20, 21}}, []RowRange{{0, 12}, {20, 21}}},
		{[]RowRange{{3, 2}, {1, 4}, {2, 6}}, []RowRange{{1, 6}}},
	}
	for _, c := range cases {
		got := NormalizeRanges(append([]RowRange(nil), c.in...))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("NormalizeRanges(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntersectUnionRanges(t *testing.T) {
	a := []RowRange{{0, 10}, {20, 30}}
	b := []RowRange{{5, 25}}
	if got, want := IntersectRanges(a, b), []RowRange{{5, 10}, {20, 25}}; !reflect.DeepEqual(got, want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	if got, want := UnionRanges(a, b), []RowRange{{0, 30}}; !reflect.DeepEqual(got, want) {
		t.Errorf("union = %v, want %v", got, want)
	}
	if got := IntersectRanges(a, nil); len(got) != 0 {
		t.Errorf("intersect with empty = %v, want empty", got)
	}
	if got, want := UnionRanges(nil, b), []RowRange{{5, 25}}; !reflect.DeepEqual(got, want) {
		t.Errorf("union with empty = %v, want %v", got, want)
	}
}

func TestRangesContainOverlapLen(t *testing.T) {
	rs := []RowRange{{2, 5}, {8, 10}}
	if RangesLen(rs) != 5 {
		t.Errorf("RangesLen = %d, want 5", RangesLen(rs))
	}
	for row, want := range map[int64]bool{1: false, 2: true, 4: true, 5: false, 8: true, 9: true, 10: false} {
		if got := RangesContain(rs, row); got != want {
			t.Errorf("RangesContain(%d) = %v, want %v", row, got, want)
		}
	}
	overlaps := []struct {
		lo, hi int64
		want   bool
	}{
		{0, 2, false}, {0, 3, true}, {5, 8, false}, {4, 9, true}, {10, 12, false}, {3, 3, false},
	}
	for _, c := range overlaps {
		if got := RangesOverlap(rs, c.lo, c.hi); got != c.want {
			t.Errorf("RangesOverlap(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

// TestIntersectUnionEdgeCases pins the interval algebra on the
// degenerate shapes the compound planner and the shard merge path
// produce: empty sets on either side, adjacent spans that must fuse
// under union but vanish under intersection, single-row spans, and a
// full-⊤ operand (the whole-file range an unindexed predicate
// contributes) that must be the identity for intersection and the
// absorber for union.
func TestIntersectUnionEdgeCases(t *testing.T) {
	top := []RowRange{{0, 1 << 40}} // full-⊤: every row of any file
	cases := []struct {
		name          string
		a, b          []RowRange
		wantIntersect []RowRange
		wantUnion     []RowRange
	}{
		{"both empty", nil, nil, nil, nil},
		{"left empty", nil, []RowRange{{3, 7}}, nil, []RowRange{{3, 7}}},
		{"right empty", []RowRange{{3, 7}}, nil, nil, []RowRange{{3, 7}}},
		{"adjacent spans", []RowRange{{0, 5}}, []RowRange{{5, 10}}, nil, []RowRange{{0, 10}}},
		{"adjacent chain", []RowRange{{0, 2}, {4, 6}}, []RowRange{{2, 4}, {6, 8}}, nil, []RowRange{{0, 8}}},
		{"single-row spans", []RowRange{{4, 5}}, []RowRange{{4, 5}}, []RowRange{{4, 5}}, []RowRange{{4, 5}}},
		{"single-row disjoint", []RowRange{{4, 5}}, []RowRange{{5, 6}}, nil, []RowRange{{4, 6}}},
		{"single-row inside span", []RowRange{{0, 10}}, []RowRange{{4, 5}}, []RowRange{{4, 5}}, []RowRange{{0, 10}}},
		{"top is intersect identity", top, []RowRange{{2, 5}, {9, 11}}, []RowRange{{2, 5}, {9, 11}}, top},
		{"top absorbs union", []RowRange{{2, 5}}, top, []RowRange{{2, 5}}, top},
		{"top with empty", top, nil, nil, top},
		{"same set", []RowRange{{1, 4}, {8, 9}}, []RowRange{{1, 4}, {8, 9}}, []RowRange{{1, 4}, {8, 9}}, []RowRange{{1, 4}, {8, 9}}},
		{"nested spans", []RowRange{{0, 100}}, []RowRange{{10, 20}, {30, 40}}, []RowRange{{10, 20}, {30, 40}}, []RowRange{{0, 100}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkEq := func(op string, got, want []RowRange) {
				t.Helper()
				if len(got) == 0 && len(want) == 0 {
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s(%v, %v) = %v, want %v", op, c.a, c.b, got, want)
				}
			}
			checkEq("intersect", IntersectRanges(c.a, c.b), c.wantIntersect)
			checkEq("union", UnionRanges(c.a, c.b), c.wantUnion)
			// Both ops are symmetric.
			checkEq("intersect-sym", IntersectRanges(c.b, c.a), c.wantIntersect)
			checkEq("union-sym", UnionRanges(c.b, c.a), c.wantUnion)
			// Results must already be normalized (canonical form).
			for op, got := range map[string][]RowRange{
				"intersect": IntersectRanges(c.a, c.b),
				"union":     UnionRanges(c.a, c.b),
			} {
				norm := NormalizeRanges(append([]RowRange(nil), got...))
				checkEq(op+"-normalized", got, norm)
			}
		})
	}
}

// TestRangeOpsAgainstBitmap cross-checks the interval algebra against
// a naive per-row bitmap model on random inputs.
func TestRangeOpsAgainstBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const universe = 200
	randSet := func() []RowRange {
		var rs []RowRange
		for i := 0; i < rng.Intn(6); i++ {
			lo := rng.Int63n(universe)
			rs = append(rs, RowRange{Lo: lo, Hi: lo + rng.Int63n(40)})
		}
		return NormalizeRanges(rs)
	}
	bitmap := func(rs []RowRange) [universe + 50]bool {
		var m [universe + 50]bool
		for _, r := range rs {
			for i := r.Lo; i < r.Hi && int(i) < len(m); i++ {
				m[i] = true
			}
		}
		return m
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randSet(), randSet()
		ma, mb := bitmap(a), bitmap(b)
		inter, uni := IntersectRanges(a, b), UnionRanges(a, b)
		mi, mu := bitmap(inter), bitmap(uni)
		for row := 0; row < universe+50; row++ {
			if want := ma[row] && mb[row]; mi[row] != want {
				t.Fatalf("trial %d: intersect row %d = %v, want %v (a=%v b=%v)", trial, row, mi[row], want, a, b)
			}
			if want := ma[row] || mb[row]; mu[row] != want {
				t.Fatalf("trial %d: union row %d = %v, want %v (a=%v b=%v)", trial, row, mu[row], want, a, b)
			}
		}
	}
}
