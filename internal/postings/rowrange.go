package postings

import "sort"

// RowRange is a half-open interval [Lo, Hi) of file-global row
// numbers. Compound search plans work in row coordinates: pages of
// different columns do not align (pages are byte-sized), so candidate
// page sets from different indices are converted to row ranges,
// intersected or unioned, and mapped back to each column's pages.
type RowRange struct {
	Lo, Hi int64
}

// NormalizeRanges sorts rs by Lo, drops empty ranges, and merges
// overlapping or adjacent ones, returning a canonical disjoint
// ascending set. The input slice may be reordered.
func NormalizeRanges(rs []RowRange) []RowRange {
	kept := rs[:0]
	for _, r := range rs {
		if r.Hi > r.Lo {
			kept = append(kept, r)
		}
	}
	if len(kept) < 2 {
		return kept
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Lo < kept[j].Lo })
	out := kept[:1]
	for _, r := range kept[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// IntersectRanges returns the intersection of two normalized range
// sets, itself normalized.
func IntersectRanges(a, b []RowRange) []RowRange {
	var out []RowRange
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Lo
		if b[j].Lo > lo {
			lo = b[j].Lo
		}
		hi := a[i].Hi
		if b[j].Hi < hi {
			hi = b[j].Hi
		}
		if lo < hi {
			out = append(out, RowRange{Lo: lo, Hi: hi})
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// UnionRanges returns the union of two normalized range sets, itself
// normalized.
func UnionRanges(a, b []RowRange) []RowRange {
	merged := make([]RowRange, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return NormalizeRanges(merged)
}

// RangesLen returns the total number of rows covered by a normalized
// range set.
func RangesLen(rs []RowRange) int64 {
	var n int64
	for _, r := range rs {
		n += r.Hi - r.Lo
	}
	return n
}

// RangesContain reports whether row lies in the normalized range set.
func RangesContain(rs []RowRange, row int64) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > row })
	return i < len(rs) && rs[i].Lo <= row
}

// RangesOverlap reports whether [lo, hi) intersects the normalized
// range set.
func RangesOverlap(rs []RowRange, lo, hi int64) bool {
	if hi <= lo {
		return false
	}
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > lo })
	return i < len(rs) && rs[i].Lo < hi
}
