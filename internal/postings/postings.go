// Package postings defines the physical-location references Rottnest
// indices resolve to. Posting lists point to data pages rather than
// individual rows (Section V-A): in-situ probing downloads the page
// and re-checks the predicate, so page-granular postings keep the
// index small at the cost of a little query-time filtering.
package postings

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageRef locates one data page of one indexed file. File is an index
// into the index file's own file table; Page is the page ordinal
// within that file's indexed column.
type PageRef struct {
	File uint32
	Page uint32
}

// Less orders refs by (File, Page).
func (r PageRef) Less(o PageRef) bool {
	if r.File != o.File {
		return r.File < o.File
	}
	return r.Page < o.Page
}

// RowRef locates one row of one indexed file by file-global row
// number. Vector indices use row-level refs so the refine step can
// fetch exactly the candidate vectors.
type RowRef struct {
	File uint32
	Row  int64
}

// Sort sorts refs by (File, Page).
func Sort(refs []PageRef) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
}

// Dedup sorts and deduplicates refs in place, returning the shortened
// slice.
func Dedup(refs []PageRef) []PageRef {
	if len(refs) < 2 {
		return refs
	}
	Sort(refs)
	out := refs[:1]
	for _, r := range refs[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// AppendList serializes a posting list as a count followed by
// delta-encoded (file, page) pairs; the list must be sorted.
func AppendList(dst []byte, refs []PageRef) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(refs)))
	prev := PageRef{}
	for i, r := range refs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(r.File))
			dst = binary.AppendUvarint(dst, uint64(r.Page))
		} else {
			dst = binary.AppendUvarint(dst, uint64(r.File-prev.File))
			if r.File == prev.File {
				dst = binary.AppendUvarint(dst, uint64(r.Page-prev.Page))
			} else {
				dst = binary.AppendUvarint(dst, uint64(r.Page))
			}
		}
		prev = r
	}
	return dst
}

// DecodeList parses a posting list from data, returning the refs and
// the number of bytes consumed.
func DecodeList(data []byte) ([]PageRef, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("postings: truncated list header")
	}
	// Each ref needs at least two bytes; a larger claimed count can
	// only come from corruption and must not drive the allocation.
	if count > uint64(len(data)) {
		return nil, 0, fmt.Errorf("postings: list claims %d refs in %d bytes", count, len(data))
	}
	pos := n
	refs := make([]PageRef, count)
	prev := PageRef{}
	for i := range refs {
		df, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("postings: truncated list at %d", i)
		}
		pos += n
		dp, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("postings: truncated list at %d", i)
		}
		pos += n
		if i == 0 {
			prev = PageRef{File: uint32(df), Page: uint32(dp)}
		} else if df == 0 {
			prev = PageRef{File: prev.File, Page: prev.Page + uint32(dp)}
		} else {
			prev = PageRef{File: prev.File + uint32(df), Page: uint32(dp)}
		}
		refs[i] = prev
	}
	return refs, pos, nil
}

// Remap rewrites the File field of each ref through the mapping,
// dropping refs whose file is absent. Index merging uses it to rebase
// posting lists onto the merged file table.
func Remap(refs []PageRef, mapping map[uint32]uint32) []PageRef {
	out := refs[:0]
	for _, r := range refs {
		if nf, ok := mapping[r.File]; ok {
			out = append(out, PageRef{File: nf, Page: r.Page})
		}
	}
	return out
}
