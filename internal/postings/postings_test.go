package postings

import (
	"testing"
	"testing/quick"
)

func TestSortDedup(t *testing.T) {
	refs := []PageRef{{2, 1}, {1, 5}, {2, 1}, {1, 2}, {1, 5}}
	got := Dedup(refs)
	want := []PageRef{{1, 2}, {1, 5}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("Dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedup[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := Dedup(nil); len(out) != 0 {
		t.Fatal("Dedup(nil)")
	}
	single := []PageRef{{1, 1}}
	if out := Dedup(single); len(out) != 1 {
		t.Fatal("Dedup(single)")
	}
}

func TestListRoundTrip(t *testing.T) {
	refs := []PageRef{{0, 0}, {0, 3}, {0, 100}, {5, 0}, {5, 7}, {1000, 42}}
	data := AppendList(nil, refs)
	got, n, err := DecodeList(data)
	if err != nil || n != len(data) {
		t.Fatalf("DecodeList: n=%d err=%v", n, err)
	}
	if len(got) != len(refs) {
		t.Fatalf("got %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %v, want %v", i, got[i], refs[i])
		}
	}
}

func TestListRoundTripProperty(t *testing.T) {
	f := func(files []uint32, pages []uint32) bool {
		n := len(files)
		if len(pages) < n {
			n = len(pages)
		}
		refs := make([]PageRef, n)
		for i := 0; i < n; i++ {
			refs[i] = PageRef{File: files[i] % 1000, Page: pages[i] % 1000}
		}
		refs = Dedup(refs)
		data := AppendList(nil, refs)
		got, _, err := DecodeList(data)
		if err != nil || len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeListErrors(t *testing.T) {
	if _, _, err := DecodeList(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// Claim 10 refs, provide none.
	data := AppendList(nil, []PageRef{{1, 1}})
	if _, _, err := DecodeList(data[:1]); err == nil {
		t.Fatal("truncated list accepted")
	}
}

func TestRemap(t *testing.T) {
	refs := []PageRef{{0, 1}, {1, 2}, {2, 3}}
	mapping := map[uint32]uint32{0: 10, 2: 20}
	got := Remap(refs, mapping)
	want := []PageRef{{10, 1}, {20, 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Remap = %v", got)
	}
}
