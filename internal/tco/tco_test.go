package tco

import (
	"math"
	"strings"
	"testing"
)

// paperLikeParams returns parameters in the regime of the paper's
// UUID evaluation: cheap tiny index queries, expensive scans, and a
// pricey always-on cluster.
func paperLikeParams() Params {
	return Params{
		CPMCopyData:   250,    // 3 always-on instances + EBS
		CPMBruteForce: 7,      // ~300GB on S3
		CPQBruteForce: 0.5,    // 8 workers for minutes
		ICRottnest:    5,      // one-time indexing
		CPMRottnest:   8,      // raw + small index
		CPQRottnest:   0.0006, // ~2s on one instance
	}
}

func TestTCOFormulas(t *testing.T) {
	p := paperLikeParams()
	if got := p.TCO(CopyData, 10, 1e6); got != 2500 {
		t.Fatalf("copy-data TCO = %v", got)
	}
	if got := p.TCO(BruteForce, 2, 10); got != 14+5 {
		t.Fatalf("brute-force TCO = %v", got)
	}
	if got := p.TCO(Rottnest, 1, 1000); got != 5+8+0.6 {
		t.Fatalf("rottnest TCO = %v", got)
	}
}

func TestBestRegions(t *testing.T) {
	p := paperLikeParams()
	// Almost no queries: brute force (no index cost).
	if got := p.Best(1, 1); got != BruteForce {
		t.Fatalf("low-load winner = %v", got)
	}
	// Moderate queries over months: Rottnest.
	if got := p.Best(10, 1e4); got != Rottnest {
		t.Fatalf("mid-load winner = %v", got)
	}
	// Enormous query load: copy data.
	if got := p.Best(10, 1e9); got != CopyData {
		t.Fatalf("high-load winner = %v", got)
	}
}

func TestRottnestWindowSpansOrdersOfMagnitude(t *testing.T) {
	p := paperLikeParams()
	lo, hi, ok := p.RottnestWindow(10)
	if !ok {
		t.Fatal("rottnest never wins")
	}
	if lo >= hi {
		t.Fatalf("window [%v, %v]", lo, hi)
	}
	// The paper reports >= 4 orders of magnitude at 10 months.
	if math.Log10(hi/lo) < 3 {
		t.Fatalf("window spans only %.1f orders of magnitude", math.Log10(hi/lo))
	}
	// Window boundaries are consistent with Best.
	if p.Best(10, lo*1.1) != Rottnest || p.Best(10, hi*0.9) != Rottnest {
		t.Fatal("window interior not won by rottnest")
	}
	if p.Best(10, lo*0.5) == Rottnest || p.Best(10, hi*2) == Rottnest {
		t.Fatal("window exterior won by rottnest")
	}
}

func TestBreakEvenMonths(t *testing.T) {
	p := paperLikeParams()
	// A steady workload of 3000 queries/month breaks even quickly.
	m, ok := p.BreakEvenMonths(3000)
	if !ok {
		t.Fatal("no break-even")
	}
	if m > 3 {
		t.Fatalf("break-even at %v months", m)
	}
	// Near-zero load never justifies the index.
	if _, ok := p.BreakEvenMonths(0.0001); ok {
		t.Fatal("break-even with no queries")
	}
}

func TestPhaseDiagramStructure(t *testing.T) {
	p := paperLikeParams()
	d := ComputeDiagram(p, 0.1, 100, 1, 1e9, 40)
	if len(d.Months) != 40 || len(d.Queries) != 40 {
		t.Fatalf("grid %dx%d", len(d.Months), len(d.Queries))
	}
	// Every approach wins somewhere, and shares sum to 1.
	var sum float64
	for _, a := range []Approach{BruteForce, Rottnest, CopyData} {
		share := d.Share(a)
		if share == 0 {
			t.Fatalf("%v wins nowhere", a)
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Monotone structure on the query axis: at fixed months, as
	// queries rise the winner moves brute-force -> rottnest ->
	// copy-data (never backwards).
	rank := map[Approach]int{BruteForce: 0, Rottnest: 1, CopyData: 2}
	for mi := range d.Months {
		prev := -1
		for qi := range d.Queries {
			r := rank[d.Winner[qi][mi]]
			if r < prev {
				t.Fatalf("winner regressed at month %v", d.Months[mi])
			}
			prev = r
		}
	}
	// Render produces one row per query level plus axes.
	rendered := d.Render()
	if strings.Count(rendered, "\n") != 42 {
		t.Fatalf("render rows = %d", strings.Count(rendered, "\n"))
	}
	for _, g := range []string{"B", "R", "C"} {
		if !strings.Contains(rendered, g) {
			t.Fatalf("render missing %s region", g)
		}
	}
}

func TestMeasurementDerivesParams(t *testing.T) {
	m := Measurement{
		Pricing:                DefaultPricing(),
		RawBytes:               300e9,
		IndexBytes:             30e9,
		CopyBytes:              330e9,
		IndexSeconds:           3600,
		RottnestQuerySeconds:   2,
		BruteForceWorkers:      8,
		BruteForceQuerySeconds: 600,
		DedicatedReplicas:      3,
		ScaleFactor:            1,
	}
	p := m.Params()
	// Sanity: brute-force query = 8 workers * 600s at ~$1/h ≈ $1.34.
	if p.CPQBruteForce < 1 || p.CPQBruteForce > 2 {
		t.Fatalf("cpq_bf = %v", p.CPQBruteForce)
	}
	// Rottnest query = 2s of one instance: well under a cent.
	if p.CPQRottnest <= 0 || p.CPQRottnest > 0.01 {
		t.Fatalf("cpq_r = %v", p.CPQRottnest)
	}
	// Storage: raw 300GB ≈ $6.9/mo; with index ≈ $7.6/mo.
	if p.CPMBruteForce < 6 || p.CPMBruteForce > 8 {
		t.Fatalf("cpm_bf = %v", p.CPMBruteForce)
	}
	if p.CPMRottnest <= p.CPMBruteForce {
		t.Fatal("index storage must cost something")
	}
	// Dedicated: 3 instances always on ≈ $220/mo + 3x EBS ≈ $79/mo.
	if p.CPMCopyData < 200 || p.CPMCopyData > 400 {
		t.Fatalf("cpm_i = %v", p.CPMCopyData)
	}
	// Scale factor doubles size-derived params, leaves cpq_r alone.
	m.ScaleFactor = 2
	p2 := m.Params()
	if math.Abs(p2.CPMBruteForce-2*p.CPMBruteForce) > 1e-9 {
		t.Fatal("cpm_bf did not scale")
	}
	if p2.CPQRottnest != p.CPQRottnest {
		t.Fatal("cpq_r must not scale with dataset size")
	}
}

func TestSensitivityDirections(t *testing.T) {
	// The two observations of Section VII-D1.
	p := paperLikeParams()
	at := func(pp Params) (lo, hi float64) {
		lo, hi, ok := pp.RottnestWindow(10)
		if !ok {
			t.Fatal("no window")
		}
		return lo, hi
	}
	_, hi0 := at(p)

	// 1) Cheaper queries (cpq_r /4) push the copy-data boundary up,
	// with virtually no effect on the brute-force boundary.
	cheapQ := p
	cheapQ.CPQRottnest /= 4
	lo0, _ := at(p)
	lo1, hi1 := at(cheapQ)
	if hi1 < hi0 {
		t.Fatal("cheaper queries must not shrink the top boundary")
	}
	if math.Abs(math.Log10(lo1/lo0)) > 0.5 {
		t.Fatal("cheaper queries moved the brute-force boundary a lot")
	}

	// 2) Smaller index (cpm_r -> cpm_bf) pushes the brute-force
	// boundary down.
	smallIdx := p
	smallIdx.CPMRottnest = p.CPMBruteForce
	lo2, _ := at(smallIdx)
	if lo2 > lo0 {
		t.Fatal("smaller index must not raise the brute-force boundary")
	}
}

func TestBoundariesMatchClosedForm(t *testing.T) {
	// The brute-force/Rottnest boundary has a closed form:
	// queries* = (ic_r + (cpm_r - cpm_bf) * months) / (cpq_bf - cpq_r),
	// and the Rottnest/copy-data boundary:
	// queries* = (cpm_i*months - ic_r - cpm_r*months) / cpq_r.
	// The bisection-based window must agree within grid tolerance.
	p := paperLikeParams()
	for _, months := range []float64{2, 10, 40} {
		lo, hi, ok := p.RottnestWindow(months)
		if !ok {
			t.Fatalf("no window at %v months", months)
		}
		wantLo := (p.ICRottnest + (p.CPMRottnest-p.CPMBruteForce)*months) / (p.CPQBruteForce - p.CPQRottnest)
		wantHi := (p.CPMCopyData*months - p.ICRottnest - p.CPMRottnest*months) / p.CPQRottnest
		if rel := math.Abs(lo-wantLo) / wantLo; rel > 0.01 {
			t.Fatalf("months %v: lo %.4g vs closed form %.4g (%.2f%%)", months, lo, wantLo, rel*100)
		}
		if rel := math.Abs(hi-wantHi) / wantHi; rel > 0.01 {
			t.Fatalf("months %v: hi %.4g vs closed form %.4g (%.2f%%)", months, hi, wantHi, rel*100)
		}
	}
}

func TestApproachString(t *testing.T) {
	if BruteForce.String() != "brute-force" || Rottnest.String() != "rottnest" || CopyData.String() != "copy-data" {
		t.Fatal("approach names")
	}
	if Approach(9).String() == "" {
		t.Fatal("unknown approach name empty")
	}
}

func TestTCOUnknownApproachIsInfinite(t *testing.T) {
	p := paperLikeParams()
	if !math.IsInf(p.TCO(Approach(42), 1, 1), 1) {
		t.Fatal("unknown approach must never win")
	}
}

func TestRottnestWindowNoWin(t *testing.T) {
	// If Rottnest's query cost exceeds brute force's and its storage
	// exceeds both, it never wins.
	p := Params{
		CPMCopyData:   10,
		CPMBruteForce: 1,
		CPQBruteForce: 0.001,
		ICRottnest:    100,
		CPMRottnest:   50,
		CPQRottnest:   0.01,
	}
	if _, _, ok := p.RottnestWindow(10); ok {
		t.Fatal("hopeless params won a window")
	}
	if _, ok := p.BreakEvenMonths(100); ok {
		t.Fatal("hopeless params broke even")
	}
}

func TestLogspaceEndpoints(t *testing.T) {
	xs := logspace(0.1, 100, 13)
	if math.Abs(xs[0]-0.1) > 1e-12 || math.Abs(xs[12]-100) > 1e-9 {
		t.Fatalf("endpoints %v %v", xs[0], xs[12])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("not increasing")
		}
	}
}
