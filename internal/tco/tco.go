// Package tco implements the paper's evaluation framework (Section
// VI): total-cost-of-ownership models for the three approaches —
// copy-data, brute-force, and Rottnest — and the physics-inspired
// phase diagrams that map which approach is cheapest at each (months
// of operation, total normalized queries) point.
package tco

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Approach identifies one of the three architectures compared.
type Approach int

// The three approaches of Figure 2.
const (
	// BruteForce scans the lake with an on-demand cluster.
	BruteForce Approach = iota
	// Rottnest maintains lazy object-storage indices over the lake.
	Rottnest
	// CopyData replicates the data into an always-on dedicated
	// system.
	CopyData
)

// String implements fmt.Stringer.
func (a Approach) String() string {
	switch a {
	case BruteForce:
		return "brute-force"
	case Rottnest:
		return "rottnest"
	case CopyData:
		return "copy-data"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Params are the six cost parameters of Section VI, in USD. Each
// approach's TCO at (months, queries) is:
//
//	copy-data:   CPMCopyData * months
//	brute-force: CPMBruteForce * months + CPQBruteForce * queries
//	rottnest:    ICRottnest + CPMRottnest * months + CPQRottnest * queries
type Params struct {
	// CPMCopyData (cpm_i) is the dedicated cluster's monthly cost,
	// folding in its indexing and query costs.
	CPMCopyData float64
	// CPMBruteForce (cpm_bf) is S3 storage of the compressed raw
	// data per month.
	CPMBruteForce float64
	// CPQBruteForce (cpq_bf) is the compute cost of one full-scan
	// normalized query.
	CPQBruteForce float64
	// ICRottnest (ic_r) is the one-time index construction cost,
	// including adequate compaction.
	ICRottnest float64
	// CPMRottnest (cpm_r) is S3 storage of raw data plus index per
	// month.
	CPMRottnest float64
	// CPQRottnest (cpq_r) is the compute cost of one indexed query.
	CPQRottnest float64
}

// TCO returns the approach's total cost of ownership at the given
// operating point.
func (p Params) TCO(a Approach, months, queries float64) float64 {
	switch a {
	case CopyData:
		return p.CPMCopyData * months
	case BruteForce:
		return p.CPMBruteForce*months + p.CPQBruteForce*queries
	case Rottnest:
		return p.ICRottnest + p.CPMRottnest*months + p.CPQRottnest*queries
	default:
		return math.Inf(1)
	}
}

// Best returns the cheapest approach at the operating point, with
// ties resolved in favour of the simplest system (brute force, then
// Rottnest, then copy-data).
func (p Params) Best(months, queries float64) Approach {
	best, bestCost := BruteForce, p.TCO(BruteForce, months, queries)
	for _, a := range []Approach{Rottnest, CopyData} {
		if c := p.TCO(a, months, queries); c < bestCost {
			best, bestCost = a, c
		}
	}
	return best
}

// RottnestWindow returns the range of total query counts [lo, hi] at
// the given month for which Rottnest is the cheapest approach, or ok
// = false if it never wins. The window ends are found by bisection on
// the log-query axis, matching the log-log phase diagrams of
// Figures 7 and 9.
func (p Params) RottnestWindow(months float64) (lo, hi float64, ok bool) {
	const minQ, maxQ = 1.0, 1e12
	// Scan coarsely for any winning point.
	found := math.NaN()
	for lq := 0.0; lq <= 12; lq += 0.05 {
		q := math.Pow(10, lq)
		if p.Best(months, q) == Rottnest {
			found = q
			break
		}
	}
	if math.IsNaN(found) {
		return 0, 0, false
	}
	bisect := func(isLow bool) float64 {
		a, b := minQ, found
		if !isLow {
			a, b = found, maxQ
		}
		for i := 0; i < 80; i++ {
			mid := math.Sqrt(a * b) // geometric midpoint
			winner := p.Best(months, mid) == Rottnest
			if isLow {
				if winner {
					b = mid
				} else {
					a = mid
				}
			} else {
				if winner {
					a = mid
				} else {
					b = mid
				}
			}
		}
		if isLow {
			return b
		}
		return a
	}
	return bisect(true), bisect(false), true
}

// BreakEvenMonths returns the operating duration at which Rottnest
// first beats brute force for a workload issuing queriesPerMonth
// normalized queries per month (the "2 days for substring search"
// numbers of VII-B1). Returns ok=false if it never does within 10
// years.
func (p Params) BreakEvenMonths(queriesPerMonth float64) (float64, bool) {
	for m := 0.001; m <= 120; m *= 1.02 {
		q := queriesPerMonth * m
		if p.Best(m, q) == Rottnest {
			return m, true
		}
	}
	return 0, false
}

// PhaseDiagram is the winner at every cell of a log-log grid.
type PhaseDiagram struct {
	// Months and Queries are the grid axes (ascending).
	Months  []float64
	Queries []float64
	// Winner[qi][mi] is the cheapest approach at
	// (Months[mi], Queries[qi]).
	Winner [][]Approach
}

// ComputeDiagram evaluates the winner over a log-log grid spanning
// [minMonths, maxMonths] x [minQueries, maxQueries] with the given
// resolution per axis.
func ComputeDiagram(p Params, minMonths, maxMonths, minQueries, maxQueries float64, resolution int) *PhaseDiagram {
	if resolution < 2 {
		resolution = 2
	}
	months := logspace(minMonths, maxMonths, resolution)
	queries := logspace(minQueries, maxQueries, resolution)
	winner := make([][]Approach, len(queries))
	for qi, q := range queries {
		winner[qi] = make([]Approach, len(months))
		for mi, m := range months {
			winner[qi][mi] = p.Best(m, q)
		}
	}
	return &PhaseDiagram{Months: months, Queries: queries, Winner: winner}
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Render draws the diagram as ASCII art (months on x, queries on y,
// largest query count on top), the textual analogue of Figures 7 and
// 9: B = brute force, R = Rottnest, C = copy data.
func (d *PhaseDiagram) Render() string {
	var sb strings.Builder
	glyph := map[Approach]byte{BruteForce: 'B', Rottnest: 'R', CopyData: 'C'}
	for qi := len(d.Queries) - 1; qi >= 0; qi-- {
		fmt.Fprintf(&sb, "%8.1e |", d.Queries[qi])
		for mi := range d.Months {
			sb.WriteByte(glyph[d.Winner[qi][mi]])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8s  +%s\n", "queries", strings.Repeat("-", len(d.Months)))
	fmt.Fprintf(&sb, "%8s   %.2g ... %.2g months\n", "", d.Months[0], d.Months[len(d.Months)-1])
	return sb.String()
}

// Share returns the fraction of grid cells won by the approach.
func (d *PhaseDiagram) Share(a Approach) float64 {
	total, won := 0, 0
	for _, row := range d.Winner {
		for _, w := range row {
			total++
			if w == a {
				won++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(won) / float64(total)
}

// Measurement converts measured resources into the six parameters.
// It implements the cost accounting of Section VII: query and index
// costs are instance-hours times instance price; monthly costs are
// storage at S3/EBS prices; the dedicated system is always-on
// replicated instances plus replicated EBS.
type Measurement struct {
	Pricing Pricing

	// RawBytes is the compressed dataset size in the lake.
	RawBytes int64
	// IndexBytes is the total Rottnest index size.
	IndexBytes int64
	// CopyBytes is the dedicated system's data+index footprint
	// (before replication).
	CopyBytes int64

	// IndexSeconds is single-worker time to build (and adequately
	// compact) the Rottnest index.
	IndexSeconds float64
	// RottnestQuerySeconds is single-worker latency of one Rottnest
	// query (post-compaction).
	RottnestQuerySeconds float64
	// BruteForceWorkers and BruteForceQuerySeconds describe one
	// normalized brute-force query at its cost-efficient cluster
	// size.
	BruteForceWorkers      int
	BruteForceQuerySeconds float64

	// DedicatedReplicas is the always-on instance count.
	DedicatedReplicas int

	// ScaleFactor linearly extrapolates byte- and build-time-derived
	// parameters from the measured dataset to the paper-scale
	// dataset (Section VII-D2: all parameters except cpq_r scale
	// linearly with dataset size under a fixed distribution, and
	// post-compaction cpq_r is size-insensitive). 1 means no
	// extrapolation.
	ScaleFactor float64
}

// Params derives the six TCO parameters.
func (m Measurement) Params() Params {
	pr := m.Pricing
	scale := m.ScaleFactor
	if scale <= 0 {
		scale = 1
	}
	workers := m.BruteForceWorkers
	if workers <= 0 {
		workers = 8
	}
	replicas := m.DedicatedReplicas
	if replicas <= 0 {
		replicas = 3
	}
	perSecond := pr.WorkerPerHour / 3600
	return Params{
		CPMCopyData: float64(replicas)*pr.DedicatedPerHour*hoursPerMonth +
			3*gb(m.CopyBytes)*scale*pr.EBSPerGBMonth,
		CPMBruteForce: gb(m.RawBytes) * scale * pr.S3StoragePerGBMonth,
		CPQBruteForce: m.BruteForceQuerySeconds * scale * float64(workers) * perSecond,
		ICRottnest:    m.IndexSeconds * scale * perSecond,
		CPMRottnest:   gb(m.RawBytes+m.IndexBytes) * scale * pr.S3StoragePerGBMonth,
		CPQRottnest:   m.RottnestQuerySeconds * perSecond, // size-insensitive
	}
}

// Seconds converts a virtual duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }
