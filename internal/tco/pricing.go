package tco

// Pricing holds the cloud prices the cost model multiplies measured
// resource usage by. Defaults are AWS us-east-1 public prices
// contemporaneous with the paper.
type Pricing struct {
	// S3StoragePerGBMonth is object storage, $/GB-month.
	S3StoragePerGBMonth float64
	// S3GetPerMillion and S3PutPerMillion are request prices, $/1M.
	S3GetPerMillion float64
	S3PutPerMillion float64
	// WorkerPerHour is the scan/search instance price (r6i.4xlarge
	// in the paper's brute-force and Rottnest configurations).
	WorkerPerHour float64
	// DedicatedPerHour is the always-on search instance price
	// (r6g.large class).
	DedicatedPerHour float64
	// EBSPerGBMonth is replicated SSD storage for the dedicated
	// system's index.
	EBSPerGBMonth float64
}

// DefaultPricing returns AWS us-east-1 prices.
func DefaultPricing() Pricing {
	return Pricing{
		S3StoragePerGBMonth: 0.023,
		S3GetPerMillion:     0.40,
		S3PutPerMillion:     5.00,
		WorkerPerHour:       1.008,  // r6i.4xlarge
		DedicatedPerHour:    0.1008, // r6g.large
		EBSPerGBMonth:       0.08,   // gp3
	}
}

// hoursPerMonth converts instance pricing to monthly cost.
const hoursPerMonth = 730.0

// gb converts bytes to gigabytes.
func gb(bytes int64) float64 { return float64(bytes) / 1e9 }
