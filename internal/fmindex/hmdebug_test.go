package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMergeBWTRandomTiny exhaustively hammers tiny collections, where
// sentinel tie-breaks and deep repeated contexts are most likely to
// expose interleave errors.
func TestMergeBWTRandomTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		docsA := randDocs(rng, 1+rng.Intn(3), 5, 2)
		docsB := randDocs(rng, 1+rng.Intn(3), 5, 2)
		bwtA, _ := MultiStringBWT(docsA)
		bwtB, _ := MultiStringBWT(docsB)
		want, _ := MultiStringBWT(append(append([][]byte{}, docsA...), docsB...))
		got, _, err := MergeBWT(bwtA, bwtB, 0)
		if err != nil {
			t.Fatalf("trial %d: %v (docsA=%v docsB=%v)", trial, err, docsA, docsB)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: docsA=%v docsB=%v want=%v got=%v", trial, docsA, docsB, want, got)
		}
	}
}
