package fmindex

import "fmt"

// bitsFor returns the number of bits needed to represent values in
// [0, n), at least 1.
func bitsFor(n uint32) int {
	bits := 1
	for n > 1<<bits {
		bits++
	}
	return bits
}

// packBits encodes entries LSB-first at the given bit width. The page
// map stores one entry per BWT row; bit-packing (plus the component
// layer's compression) is what keeps the FM-index within the paper's
// "almost as large as the compressed Parquets" envelope rather than
// several times it.
func packBits(entries []uint32, bits int) []byte {
	out := make([]byte, (len(entries)*bits+7)/8)
	bitPos := 0
	for _, e := range entries {
		for b := 0; b < bits; b++ {
			if e&(1<<b) != 0 {
				out[bitPos/8] |= 1 << (bitPos % 8)
			}
			bitPos++
		}
	}
	return out
}

// unpackBit extracts entry idx from a packed block.
func unpackBit(data []byte, idx, bits int) (uint32, error) {
	start := idx * bits
	if (start+bits+7)/8 > len(data) {
		return 0, fmt.Errorf("fmindex: packed block truncated at entry %d", idx)
	}
	var v uint32
	for b := 0; b < bits; b++ {
		pos := start + b
		if data[pos/8]&(1<<(pos%8)) != 0 {
			v |= 1 << b
		}
	}
	return v, nil
}
