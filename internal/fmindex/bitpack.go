package fmindex

import "fmt"

// bitsFor returns the number of bits needed to represent values in
// [0, n), at least 1.
func bitsFor(n uint32) int {
	bits := 1
	for n > 1<<bits {
		bits++
	}
	return bits
}

// packBits encodes entries LSB-first at the given bit width. The page
// map stores one entry per BWT row; bit-packing (plus the component
// layer's compression) is what keeps the FM-index within the paper's
// "almost as large as the compressed Parquets" envelope rather than
// several times it.
// The stream is LSB-first: entry i's bit b lands at absolute bit
// position i*bits+b, stored in out[pos/8] at in-byte position pos%8.
// The 64-bit accumulator below emits that exact stream (bits <= 32 and
// at most 7 bits carry over, so it never overflows), one shift-or per
// entry instead of one branch per bit.
func packBits(entries []uint32, bits int) []byte {
	out := make([]byte, (len(entries)*bits+7)/8)
	mask := uint64(1)<<bits - 1
	var acc uint64
	fill := 0
	o := 0
	for _, e := range entries {
		acc |= (uint64(e) & mask) << fill
		fill += bits
		for fill >= 8 {
			out[o] = byte(acc)
			o++
			acc >>= 8
			fill -= 8
		}
	}
	if fill > 0 {
		out[o] = byte(acc)
	}
	return out
}

// unpackBit extracts entry idx from a packed block by loading the (at
// most five) bytes spanning it into one word.
func unpackBit(data []byte, idx, bits int) (uint32, error) {
	start := idx * bits
	end := start + bits
	if (end+7)/8 > len(data) {
		return 0, fmt.Errorf("fmindex: packed block truncated at entry %d", idx)
	}
	var v uint64
	for i := (end+7)/8 - 1; i >= start/8; i-- {
		v = v<<8 | uint64(data[i])
	}
	v >>= uint(start % 8)
	return uint32(v & (uint64(1)<<bits - 1)), nil
}
