package fmindex

import (
	"context"
	"math/rand"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// TestCorruptedFMIndexNeverPanics mutates index bytes and drives the
// full open/count/lookup path.
func TestCorruptedFMIndexNeverPanics(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(12))
	docs := workload.NewTextGen(workload.DefaultTextConfig(12)).Docs(200)
	var text []byte
	for _, d := range docs {
		text = append(text, d...)
		text = append(text, Separator)
	}
	valid, err := Build(text, []int64{0}, []postings.PageRef{{}}, BuildOptions{BlockSize: 2048, PageMapBlock: 2048})
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]byte{[]byte("the"), []byte(docs[5][:8]), []byte("zzz")}
	for trial := 0; trial < 150; trial++ {
		corrupted := append([]byte(nil), valid...)
		for f := 0; f <= rng.Intn(3); f++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		store := objectstore.NewMemStore(nil)
		store.Put(ctx, "fm.index", corrupted)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			r, err := component.Open(ctx, store, "fm.index", component.OpenOptions{})
			if err != nil {
				return
			}
			ix, err := Open(ctx, r)
			if err != nil {
				return
			}
			for _, p := range patterns {
				ix.Count(ctx, p)
				ix.Lookup(ctx, p, 50)
			}
		}()
	}
}
