package fmindex

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// naiveSA computes a suffix array by direct sorting, for comparison.
func naiveSA(text []byte) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(text[sa[a]:], text[sa[b]:]) < 0
	})
	return sa
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	cases := [][]byte{
		[]byte("banana\x00"),
		[]byte("mississippi\x00"),
		[]byte("aaaaaaaa\x00"),
		[]byte("abcabcabc\x00"),
		{0x01, 0x02, 0x01, 0x02, 0x00},
		{0x00},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		n := 50 + rng.Intn(500)
		text := make([]byte, n+1)
		for j := 0; j < n; j++ {
			text[j] = byte(2 + rng.Intn(8)) // small alphabet stresses ties
		}
		text[n] = 0
		cases = append(cases, text)
	}
	for ci, text := range cases {
		got := buildSuffixArray(text)
		want := naiveSA(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: sa[%d] = %d, want %d", ci, i, got[i], want[i])
			}
		}
	}
}

func TestBWTInvertRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		text := make([]byte, 0, len(raw)+1)
		for _, b := range raw {
			if b == 0 {
				b = 1
			}
			text = append(text, b)
		}
		text = append(text, 0)
		sa := buildSuffixArray(text)
		bwt := bwtFromSA(text, sa)
		return bytes.Equal(invertBWT(bwt), text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// buildTestIndex indexes docs (joined with separators) as a single
// "page" per docsPerPage documents and returns the opened index plus
// the concatenated text and page starts.
func buildTestIndex(t testing.TB, store objectstore.Store, key string, docs []string, docsPerPage int, opts BuildOptions) (*Index, []byte, []int64) {
	t.Helper()
	ctx := context.Background()
	var text []byte
	var pageStarts []int64
	var refs []postings.PageRef
	for i, d := range docs {
		if i%docsPerPage == 0 {
			pageStarts = append(pageStarts, int64(len(text)))
			refs = append(refs, postings.PageRef{File: 0, Page: uint32(len(refs))})
		}
		text = append(text, []byte(d)...)
		text = append(text, Separator)
	}
	data, err := Build(text, pageStarts, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	r, err := component.Open(ctx, store, key, component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	return ix, text, pageStarts
}

// naivePages returns the distinct page ordinals whose text contains
// pattern.
func naivePages(text []byte, pageStarts []int64, pattern []byte) []uint32 {
	var out []uint32
	seen := map[uint32]bool{}
	for pos := 0; ; {
		i := bytes.Index(text[pos:], pattern)
		if i < 0 {
			break
		}
		pos += i
		idx := sort.Search(len(pageStarts), func(j int) bool { return pageStarts[j] > int64(pos) }) - 1
		p := uint32(idx)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
		pos++
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestCountMatchesNaive(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewTextGen(workload.DefaultTextConfig(1))
	docs := gen.Docs(200)
	ix, text, _ := buildTestIndex(t, store, "fm.index", docs, 20, BuildOptions{BlockSize: 4096, PageMapBlock: 4096})

	patterns := []string{"the", "a", "zzzzzz", docs[5][:10], docs[150][3:15], "qx"}
	for _, p := range patterns {
		got, err := ix.Count(ctx, []byte(p))
		if err != nil {
			t.Fatalf("Count(%q): %v", p, err)
		}
		want := int64(bytes.Count(text, []byte(p)))
		// bytes.Count counts non-overlapping; FM counts all
		// occurrences. Use a position scan for truth.
		want = 0
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.HasPrefix(text[i:], []byte(p)) {
				want++
			}
		}
		if got != want {
			t.Fatalf("Count(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestLookupMatchesNaive(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewTextGen(workload.DefaultTextConfig(2))
	docs := gen.Docs(300)
	// Plant a needle in known documents.
	needle := "XyZZyNeEdLe"
	docs = workload.PlantNeedle(docs, needle, []int{7, 133, 288})
	ix, text, pageStarts := buildTestIndex(t, store, "fm.index", docs, 25, BuildOptions{BlockSize: 4096, PageMapBlock: 2048})

	for _, p := range []string{needle, "the", "nosuchstringanywhere", docs[42][:12]} {
		got, err := ix.Lookup(ctx, []byte(p), 0)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", p, err)
		}
		want := naivePages(text, pageStarts, []byte(p))
		if len(got) != len(want) {
			t.Fatalf("Lookup(%q) = %v, want pages %v", p, got, want)
		}
		for i := range want {
			if got[i].Page != want[i] {
				t.Fatalf("Lookup(%q)[%d] = %v, want page %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestLookupMaxRowsBounds(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = "common prefix shared by all documents " + fmt.Sprint(i)
	}
	ix, _, _ := buildTestIndex(t, store, "fm.index", docs, 5, BuildOptions{BlockSize: 1024, PageMapBlock: 512})
	all, err := ix.Lookup(ctx, []byte("common prefix"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("unbounded lookup found %d pages, want 20", len(all))
	}
	few, err := ix.Lookup(ctx, []byte("common prefix"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) == 0 || len(few) > 3 {
		t.Fatalf("bounded lookup returned %d pages", len(few))
	}
}

func TestEmptyAndEdgePatterns(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	ix, text, _ := buildTestIndex(t, store, "fm.index", []string{"hello world"}, 1, BuildOptions{})
	n, err := ix.Count(ctx, nil)
	if err != nil || n != int64(len(text))+1 {
		t.Fatalf("empty pattern count = %d, %v (text %d)", n, err, len(text))
	}
	if _, err := ix.Count(ctx, []byte{Sentinel}); err == nil {
		t.Fatal("sentinel pattern accepted")
	}
	// Pattern longer than text.
	long := strings.Repeat("x", 1000)
	if n, _ := ix.Count(ctx, []byte(long)); n != 0 {
		t.Fatalf("impossible pattern count = %d", n)
	}
	// Absent symbol short-circuits.
	if n, _ := ix.Count(ctx, []byte{0xFE}); n != 0 {
		t.Fatalf("absent symbol count = %d", n)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]byte("ab\x00cd"), []int64{0}, []postings.PageRef{{}}, BuildOptions{}); err == nil {
		t.Fatal("text with sentinel accepted")
	}
	if _, err := Build([]byte("abcd"), []int64{1}, []postings.PageRef{{}}, BuildOptions{}); err == nil {
		t.Fatal("pageStarts not at 0 accepted")
	}
	if _, err := Build([]byte("abcd"), []int64{0, 2, 2}, make([]postings.PageRef, 3), BuildOptions{}); err == nil {
		t.Fatal("non-increasing pageStarts accepted")
	}
	if _, err := Build([]byte("abcd"), []int64{0, 2}, make([]postings.PageRef, 1), BuildOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReconstructText(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(3)).Docs(50)
	ix, text, _ := buildTestIndex(t, store, "fm.index", docs, 10, BuildOptions{BlockSize: 2048})
	got, err := ix.ReconstructText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, text) {
		t.Fatalf("reconstructed %d bytes != original %d bytes", len(got), len(text))
	}
}

func TestMergeEquivalentToLookupOnBoth(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	genA := workload.NewTextGen(workload.DefaultTextConfig(4))
	genB := workload.NewTextGen(workload.DefaultTextConfig(5))
	docsA := workload.PlantNeedle(genA.Docs(100), "AlphaNeedle", []int{10})
	docsB := workload.PlantNeedle(genB.Docs(100), "BravoNeedle", []int{55})
	ixA, _, _ := buildTestIndex(t, store, "a.index", docsA, 10, BuildOptions{BlockSize: 2048})
	ixB, _, _ := buildTestIndex(t, store, "b.index", docsB, 10, BuildOptions{BlockSize: 2048})

	merged, err := Merge(ctx, []*Index{ixA, ixB}, []map[uint32]uint32{{0: 0}, {0: 1}}, BuildOptions{BlockSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "m.index", merged)
	r, err := component.Open(ctx, store, "m.index", component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ixM, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	got, err := ixM.Lookup(ctx, []byte("AlphaNeedle"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].File != 0 || got[0].Page != 1 {
		t.Fatalf("AlphaNeedle in merged = %v", got)
	}
	got, err = ixM.Lookup(ctx, []byte("BravoNeedle"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].File != 1 || got[0].Page != 5 {
		t.Fatalf("BravoNeedle in merged = %v", got)
	}
	// Counts add up.
	cA, _ := ixA.Count(ctx, []byte("the"))
	cB, _ := ixB.Count(ctx, []byte("the"))
	cM, _ := ixM.Count(ctx, []byte("the"))
	if cM != cA+cB {
		t.Fatalf("merged count %d != %d + %d", cM, cA, cB)
	}
}

func TestBackwardSearchIsDepthBound(t *testing.T) {
	// Each pattern character costs at most two block reads; with
	// caching, a short pattern over a small index touches few
	// distinct blocks, but request count must scale with pattern
	// length, not text size (the depth-bound behavior of VII-A).
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(6)).Docs(500)
	buildTestIndex(t, inner, "fm.index", docs, 50, BuildOptions{BlockSize: 1024, PageMapBlock: 1024})

	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	// A small tail read keeps the leaf components out of the open's
	// speculative fetch, so the depth of the backward search shows.
	r, err := component.Open(ctx, store, "fm.index", component.OpenOptions{TailBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []byte(docs[100][:16])
	before := metrics.Snapshot()
	if _, err := ix.Lookup(ctx, pattern, 100); err != nil {
		t.Fatal(err)
	}
	gets := metrics.Snapshot().Sub(before).Gets
	// At most 2 block reads per char plus page-map reads.
	if gets > int64(2*len(pattern)+8) {
		t.Fatalf("lookup issued %d GETs for a %d-char pattern", gets, len(pattern))
	}
	if gets == 0 {
		t.Fatal("lookup should touch the store")
	}
}

func BenchmarkFMBuild(b *testing.B) {
	docs := workload.NewTextGen(workload.DefaultTextConfig(7)).Docs(500)
	var text []byte
	for _, d := range docs {
		text = append(text, d...)
		text = append(text, Separator)
	}
	starts := []int64{0}
	refs := []postings.PageRef{{}}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(text, starts, refs, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFMLookup(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(8)).Docs(1000)
	ix, _, _ := buildTestIndex(b, store, "fm.index", docs, 50, BuildOptions{})
	pattern := []byte(docs[500][:12])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Lookup(ctx, pattern, 100); err != nil {
			b.Fatal(err)
		}
	}
}
