package fmindex

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// benchText returns ~size bytes of separator-joined workload text with
// page boundaries every 16 docs, ready for Build.
func benchText(size int) ([]byte, []int64, []postings.PageRef) {
	gen := workload.NewTextGen(workload.DefaultTextConfig(13))
	var text []byte
	var starts []int64
	var refs []postings.PageRef
	i := 0
	for len(text) < size {
		if i%16 == 0 {
			starts = append(starts, int64(len(text)))
			refs = append(refs, postings.PageRef{File: 0, Page: uint32(len(refs))})
		}
		text = append(text, []byte(gen.Docs(1)[0])...)
		text = append(text, Separator)
		i++
	}
	return text, starts, refs
}

// TestSAISSpeedShape asserts the tentpole speedup: SA-IS must build
// the suffix array of 1 MB of realistic text at least 2x faster than
// the prefix-doubling reference. The margin is wide (SA-IS measures
// ~5-10x here), so the test tolerates noisy CI machines.
func TestSAISSpeedShape(t *testing.T) {
	if raceEnabled {
		t.Skip("speed shape is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	text, _, _ := benchText(1 << 20)
	full := append(append(make([]byte, 0, len(text)+1), text...), Sentinel)

	// One warmup each, then the timed runs.
	buildSuffixArray(full)
	ReferenceSuffixArray(full)

	best := func(fn func([]byte) []int32) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			fn(full)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	sais := best(buildSuffixArray)
	ref := best(ReferenceSuffixArray)
	t.Logf("1 MB text: SA-IS %v, prefix-doubling %v (%.1fx)", sais, ref, float64(ref)/float64(sais))
	if ref < 2*sais {
		t.Fatalf("SA-IS not 2x faster: %v vs reference %v", sais, ref)
	}
}

// TestParallelEncodeScales asserts the encode pipeline uses the worker
// pool: with all cores, appendIndexComponents must beat the
// single-worker run, and both runs must emit identical bytes.
func TestParallelEncodeScales(t *testing.T) {
	if raceEnabled {
		t.Skip("scaling shape is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs to measure scaling")
	}
	text, starts, refs := benchText(4 << 20)
	full := append(append(make([]byte, 0, len(text)+1), text...), Sentinel)
	sa := buildSuffixArray(full)
	opts := BuildOptions{BlockSize: 32 << 10, PageMapBlock: 16 << 10}

	run := func(workers int) ([]byte, time.Duration) {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		var bestD time.Duration = 1<<63 - 1
		var data []byte
		for r := 0; r < 3; r++ {
			b := component.NewBuilder(component.KindFM)
			start := time.Now()
			if err := appendIndexComponents(b, full, sa, starts, refs, opts); err != nil {
				t.Fatal(err)
			}
			d := time.Since(start)
			out, err := b.Finish()
			if err != nil {
				t.Fatal(err)
			}
			data = out
			if d < bestD {
				bestD = d
			}
		}
		return data, bestD
	}

	serialBytes, serial := run(1)
	parallelBytes, par := run(runtime.NumCPU())
	t.Logf("encode 4 MB: 1 worker %v, %d workers %v (%.1fx)", serial, runtime.NumCPU(), par, float64(serial)/float64(par))
	if !bytes.Equal(serialBytes, parallelBytes) {
		t.Fatal("worker count changed the encoded bytes")
	}
	// Conservative bar: any real pool shows >= 1.3x on 4 cores; the
	// deflate stage alone is embarrassingly parallel.
	if float64(serial) < 1.3*float64(par) {
		t.Fatalf("parallel encode did not scale: 1 worker %v vs %d workers %v", serial, runtime.NumCPU(), par)
	}
}
