// Package fmindex implements Rottnest's exact-substring index
// (Section V-C2 of the paper): an FM-index over the Burrows-Wheeler
// transform of the indexed text, componentized for object storage.
//
// Layout (a component file of kind KindFM):
//
//   - BWT blocks: the BWT split into fixed-size blocks, one compressed
//     component each. occ(c, i) ranks are answered from per-block
//     checkpoint counters held in the root plus a scan of one block.
//   - Page-map blocks: a page-granular sampled suffix array — for each
//     BWT row i, the data page containing text position SA[i]. This is
//     what lets matches resolve to (file, page) posting refs without
//     storing the raw suffix array.
//   - Root component (appended last, so the open's suffix read usually
//     captures it): text length, symbol counts, per-block checkpoint
//     deltas, and the page table (text start offset and PageRef of
//     every indexed page).
//
// Backward search walks one BWT block access per pattern character —
// an inherently depth-bound access pattern; componentization keeps
// each step to a single ranged GET, which is why substring search
// lands at a few seconds of object-store latency in the paper.
package fmindex

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/parallel"
	"rottnest/internal/postings"
)

// Sentinel is the terminator byte appended to the indexed text. Text
// handed to Build must not contain it.
const Sentinel = 0x00

// Separator is the conventional byte used by callers to join
// documents before indexing; patterns containing it cannot match
// within a document.
const Separator = 0x01

// BuildOptions tune index construction.
type BuildOptions struct {
	// BlockSize is the BWT bytes per block. Defaults to 64 KiB: well
	// inside the flat region of the object-store latency curve while
	// keeping checkpoint overhead ~3%.
	BlockSize int
	// PageMapBlock is the number of page-map entries per component.
	// Defaults to 64Ki entries.
	PageMapBlock int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 64 << 10
	}
	if o.PageMapBlock <= 0 {
		o.PageMapBlock = 64 << 10
	}
	return o
}

// Build constructs an FM-index file over text. pageStarts[i] is the
// text offset at which indexed page i begins (pageStarts[0] must be
// 0, strictly increasing), and refs[i] is the page's physical
// location. Matches at positions within page i resolve to refs[i].
func Build(text []byte, pageStarts []int64, refs []postings.PageRef, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindFM)
	if err := BuildInto(b, text, pageStarts, refs, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// BuildInto appends the FM-index's components (root last) to an
// existing builder, letting callers prepend their own components —
// Rottnest's client stores its file-table manifest as component 0 of
// every index file.
func BuildInto(b *component.Builder, text []byte, pageStarts []int64, refs []postings.PageRef, opts BuildOptions) error {
	opts = opts.withDefaults()
	if err := validateBuildInput(text, pageStarts, refs); err != nil {
		return err
	}

	full := make([]byte, 0, len(text)+1)
	full = append(full, text...)
	full = append(full, Sentinel)
	sa := buildSuffixArray(full)
	return appendIndexComponents(b, full, sa, pageStarts, refs, opts)
}

// validateBuildInput checks the Build contract shared by the
// production and reference builders: parallel page tables, strictly
// increasing starts from 0, and sentinel-free text.
func validateBuildInput(text []byte, pageStarts []int64, refs []postings.PageRef) error {
	if len(pageStarts) != len(refs) {
		return fmt.Errorf("fmindex: %d page starts but %d refs", len(pageStarts), len(refs))
	}
	if len(pageStarts) == 0 || pageStarts[0] != 0 {
		return fmt.Errorf("fmindex: pageStarts must begin at 0")
	}
	for i := 1; i < len(pageStarts); i++ {
		if pageStarts[i] <= pageStarts[i-1] {
			return fmt.Errorf("fmindex: pageStarts must be strictly increasing")
		}
	}
	if bytes.IndexByte(text, Sentinel) >= 0 {
		return fmt.Errorf("fmindex: text contains the sentinel byte 0x%02x", Sentinel)
	}
	return nil
}

// appendIndexComponents encodes the FM-index from a precomputed
// suffix array: BWT blocks, page-map blocks, and the root. Every
// per-block step (checkpoint counting, page-map bit-packing, and the
// component compressor behind AddAll) fans out over the worker pool;
// block payloads are computed independently and appended in block
// order, so the emitted file is byte-identical to a serial build.
func appendIndexComponents(b *component.Builder, full []byte, sa []int32, pageStarts []int64, refs []postings.PageRef, opts BuildOptions) error {
	bwt := bwtFromSA(full, sa)
	n := len(full)

	// base is the component ID of the first BWT block; components
	// added by earlier callers (e.g. the client's manifest) shift it.
	base := b.NumComponents()

	// BWT blocks + checkpoint deltas, one parallel pass.
	numBlocks := (n + opts.BlockSize - 1) / opts.BlockSize
	checkDeltas := make([][256]uint32, numBlocks) // symbol counts within each block
	blocks := make([][]byte, numBlocks)
	parallel.ForEach(numBlocks, func(blk int) {
		lo := blk * opts.BlockSize
		hi := lo + opts.BlockSize
		if hi > n {
			hi = n
		}
		for _, c := range bwt[lo:hi] {
			checkDeltas[blk][c]++
		}
		blocks[blk] = bwt[lo:hi]
	})
	b.AddAll(blocks)

	// Page-map blocks: page ordinal of SA[i], bit-packed. pageOf is a
	// precomputed position→page table built in one O(n) walk over
	// pageStarts, replacing a per-SA-entry binary search. The sentinel
	// row maps to page 0 (harmless; patterns never match the
	// sentinel).
	pageOf := buildPosPageTable(n, pageStarts)
	numPMBlocks := (n + opts.PageMapBlock - 1) / opts.PageMapBlock
	bits := bitsFor(uint32(len(pageStarts)))
	pmBlocks := make([][]byte, numPMBlocks)
	parallel.ForEach(numPMBlocks, func(blk int) {
		lo := blk * opts.PageMapBlock
		hi := lo + opts.PageMapBlock
		if hi > n {
			hi = n
		}
		entries := make([]uint32, hi-lo)
		for i := lo; i < hi; i++ {
			pos := sa[i]
			if int(pos) == n-1 {
				pos = 0 // sentinel row; never queried
			}
			entries[i-lo] = pageOf[pos]
		}
		pmBlocks[blk] = packBits(entries, bits)
	})
	b.AddAll(pmBlocks)

	// Root.
	root := encodeRoot(n, base, opts, numBlocks, numPMBlocks, checkDeltas, pageStarts, refs)
	b.Add(root)
	return nil
}

// buildPosPageTable maps every text position in [0, n) to the page
// containing it — the largest j with pageStarts[j] <= pos — in one
// O(n + pages) walk. pageStarts is validated (strictly increasing,
// starting at 0) by BuildInto; entries beyond n cover no positions.
func buildPosPageTable(n int, pageStarts []int64) []uint32 {
	table := make([]uint32, n)
	for j := range pageStarts {
		lo := pageStarts[j]
		hi := int64(n)
		if j+1 < len(pageStarts) && pageStarts[j+1] < hi {
			hi = pageStarts[j+1]
		}
		for pos := lo; pos < hi; pos++ {
			table[pos] = uint32(j)
		}
	}
	return table
}

func encodeRoot(n, base int, opts BuildOptions, numBlocks, numPMBlocks int, checkDeltas [][256]uint32, pageStarts []int64, refs []postings.PageRef) []byte {
	root := binary.AppendUvarint(nil, uint64(base))
	root = binary.AppendUvarint(root, uint64(n))
	root = binary.AppendUvarint(root, uint64(opts.BlockSize))
	root = binary.AppendUvarint(root, uint64(numBlocks))
	root = binary.AppendUvarint(root, uint64(opts.PageMapBlock))
	root = binary.AppendUvarint(root, uint64(numPMBlocks))
	root = binary.AppendUvarint(root, uint64(len(pageStarts)))
	prev := int64(0)
	for _, s := range pageStarts {
		root = binary.AppendUvarint(root, uint64(s-prev))
		prev = s
	}
	for _, r := range refs {
		root = binary.AppendUvarint(root, uint64(r.File))
		root = binary.AppendUvarint(root, uint64(r.Page))
	}
	for blk := 0; blk < numBlocks; blk++ {
		for c := 0; c < 256; c++ {
			root = binary.AppendUvarint(root, uint64(checkDeltas[blk][c]))
		}
	}
	return root
}

// Index is an opened FM-index ready for queries.
type Index struct {
	r            *component.Reader
	base         int // component ID of the first BWT block
	n            int
	blockSize    int
	numBlocks    int
	pmBlock      int
	numPMBlocks  int
	pageStarts   []int64
	refs         []postings.PageRef
	c            [257]int64   // c[b] = rows whose first symbol < b
	checkpoints  [][256]int64 // occ at each block start
	totalSymbols [256]int64
}

// Footprint estimates the decoded index's resident bytes — page
// starts, page refs, per-block occ checkpoints, and the fixed count
// tables — for cache cost accounting. BWT block payloads are fetched
// lazily per lookup and are not part of the open result.
func (ix *Index) Footprint() int64 {
	return 8*int64(len(ix.pageStarts)) +
		48*int64(len(ix.refs)) +
		256*8*int64(len(ix.checkpoints)) +
		257*8 + 256*8 + 128
}

// Open parses the root component of the FM-index behind r.
func Open(ctx context.Context, r *component.Reader) (*Index, error) {
	if r.Kind() != component.KindFM {
		return nil, fmt.Errorf("fmindex: %s is not an FM-index (kind %d)", r.Key(), r.Kind())
	}
	root, err := r.Component(ctx, r.NumComponents()-1)
	if err != nil {
		return nil, err
	}
	ix := &Index{r: r}
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(root[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("fmindex: corrupt root")
		}
		pos += n
		return v, nil
	}
	vals := make([]uint64, 7)
	for i := range vals {
		v, err := next()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	ix.base = int(vals[0])
	ix.n = int(vals[1])
	ix.blockSize = int(vals[2])
	ix.numBlocks = int(vals[3])
	ix.pmBlock = int(vals[4])
	ix.numPMBlocks = int(vals[5])
	numPages := int(vals[6])
	// Sanity bounds: block counts must fit the file's component
	// count and the page table must fit the root. A corrupted root
	// must not drive allocations.
	if ix.base < 0 || ix.numBlocks < 0 || ix.numPMBlocks < 0 ||
		ix.base+ix.numBlocks+ix.numPMBlocks+1 > r.NumComponents() {
		return nil, fmt.Errorf("fmindex: root block counts exceed file components")
	}
	if ix.n < 0 || ix.blockSize <= 0 || ix.pmBlock <= 0 {
		return nil, fmt.Errorf("fmindex: corrupt root geometry")
	}
	// Every BWT position must land in a checkpointed block, or occ
	// would index past the checkpoint table.
	if ix.n > 0 && (ix.n-1)/ix.blockSize+1 > ix.numBlocks {
		return nil, fmt.Errorf("fmindex: root text length %d exceeds %d blocks of %d",
			ix.n, ix.numBlocks, ix.blockSize)
	}
	if ix.n > 0 && (ix.n-1)/ix.pmBlock+1 > ix.numPMBlocks {
		return nil, fmt.Errorf("fmindex: root text length %d exceeds %d page-map blocks of %d",
			ix.n, ix.numPMBlocks, ix.pmBlock)
	}
	if numPages < 0 || numPages > len(root) {
		return nil, fmt.Errorf("fmindex: root claims %d pages in %d bytes", numPages, len(root))
	}
	ix.pageStarts = make([]int64, numPages)
	var prev int64
	for i := range ix.pageStarts {
		d, err := next()
		if err != nil {
			return nil, err
		}
		prev += int64(d)
		ix.pageStarts[i] = prev
	}
	ix.refs = make([]postings.PageRef, numPages)
	for i := range ix.refs {
		f, err := next()
		if err != nil {
			return nil, err
		}
		p, err := next()
		if err != nil {
			return nil, err
		}
		ix.refs[i] = postings.PageRef{File: uint32(f), Page: uint32(p)}
	}
	ix.checkpoints = make([][256]int64, ix.numBlocks)
	var running [256]int64
	for blk := 0; blk < ix.numBlocks; blk++ {
		ix.checkpoints[blk] = running
		for c := 0; c < 256; c++ {
			d, err := next()
			if err != nil {
				return nil, err
			}
			running[c] += int64(d)
		}
	}
	ix.totalSymbols = running
	var sum int64
	for c := 0; c < 256; c++ {
		ix.c[c] = sum
		sum += running[c]
	}
	ix.c[256] = sum
	if sum != int64(ix.n) {
		return nil, fmt.Errorf("fmindex: root symbol counts sum to %d, want %d", sum, ix.n)
	}
	return ix, nil
}

// TextLen returns the indexed text length including the sentinel.
func (ix *Index) TextLen() int { return ix.n }

// NumPages returns the number of indexed pages.
func (ix *Index) NumPages() int { return len(ix.refs) }

// PageStartsAndRefs exposes the page table, used by merging.
func (ix *Index) PageStartsAndRefs() ([]int64, []postings.PageRef) {
	return ix.pageStarts, ix.refs
}

// occ returns the number of occurrences of c in BWT[0:i).
func (ix *Index) occ(ctx context.Context, c byte, i int64) (int64, error) {
	if i <= 0 {
		return 0, nil
	}
	if i >= int64(ix.n) {
		i = int64(ix.n)
	}
	blk := int((i - 1) / int64(ix.blockSize))
	base := ix.checkpoints[blk][c]
	block, err := ix.r.Component(ctx, ix.base+blk)
	if err != nil {
		return 0, err
	}
	within := i - int64(blk)*int64(ix.blockSize)
	if within > int64(len(block)) {
		// A corrupt file can ship a block shorter than the root's
		// geometry claims; counting what exists keeps this total.
		within = int64(len(block))
	}
	var count int64
	for _, b := range block[:within] {
		if b == c {
			count++
		}
	}
	return base + count, nil
}

// Count performs backward search and returns the number of
// occurrences of pattern in the indexed text.
func (ix *Index) Count(ctx context.Context, pattern []byte) (int64, error) {
	sp, ep, err := ix.backward(ctx, pattern)
	if err != nil {
		return 0, err
	}
	return ep - sp, nil
}

// backward runs FM backward search, returning the matching BWT row
// interval [sp, ep).
func (ix *Index) backward(ctx context.Context, pattern []byte) (int64, int64, error) {
	if len(pattern) == 0 {
		return 0, int64(ix.n), nil
	}
	if bytes.IndexByte(pattern, Sentinel) >= 0 {
		return 0, 0, fmt.Errorf("fmindex: pattern contains the sentinel byte")
	}
	sp, ep := int64(0), int64(ix.n)
	for i := len(pattern) - 1; i >= 0; i-- {
		c := pattern[i]
		if ix.totalSymbols[c] == 0 {
			return 0, 0, nil
		}
		oSp, err := ix.occ(ctx, c, sp)
		if err != nil {
			return 0, 0, err
		}
		oEp, err := ix.occ(ctx, c, ep)
		if err != nil {
			return 0, 0, err
		}
		sp = ix.c[c] + oSp
		ep = ix.c[c] + oEp
		if sp >= ep {
			return 0, 0, nil
		}
	}
	return sp, ep, nil
}

// Lookup returns the distinct pages containing occurrences of
// pattern, reading at most maxRows page-map entries (0 means all).
// False positives across document boundaries are possible when the
// pattern spans a separator; in-situ probing filters them.
func (ix *Index) Lookup(ctx context.Context, pattern []byte, maxRows int) ([]postings.PageRef, error) {
	refs, _, err := ix.LookupBounded(ctx, pattern, maxRows)
	return refs, err
}

// LookupBounded is Lookup that also reports whether the maxRows bound
// truncated the match set — callers implementing exact top-K must
// retry unbounded when a truncated result under-fills K (deleted rows
// or page-level false positives may have eaten the bounded sample).
func (ix *Index) LookupBounded(ctx context.Context, pattern []byte, maxRows int) ([]postings.PageRef, bool, error) {
	sp, ep, err := ix.backward(ctx, pattern)
	if err != nil {
		return nil, false, err
	}
	if sp >= ep {
		return nil, false, nil
	}
	truncated := false
	if maxRows > 0 && ep-sp > int64(maxRows) {
		ep = sp + int64(maxRows)
		truncated = true
	}
	// Fetch the page-map blocks covering [sp, ep) in one fan.
	firstBlk := int(sp) / ix.pmBlock
	lastBlk := int(ep-1) / ix.pmBlock
	ids := make([]int, 0, lastBlk-firstBlk+1)
	for blk := firstBlk; blk <= lastBlk; blk++ {
		ids = append(ids, ix.base+ix.numBlocks+blk)
	}
	blocks, err := ix.r.Components(ctx, ids)
	if err != nil {
		return nil, false, err
	}
	bits := bitsFor(uint32(len(ix.refs)))
	seen := make(map[uint32]bool)
	var out []postings.PageRef
	for i := sp; i < ep; i++ {
		blk := int(i) / ix.pmBlock
		data := blocks[blk-firstBlk]
		page, err := unpackBit(data, int(i)-blk*ix.pmBlock, bits)
		if err != nil {
			return nil, false, fmt.Errorf("fmindex: page map block %d: %w", blk, err)
		}
		if !seen[page] {
			seen[page] = true
			if int(page) < len(ix.refs) && ix.refs[page].File != ^uint32(0) {
				out = append(out, ix.refs[page])
			}
		}
	}
	postings.Sort(out)
	return out, truncated, nil
}

// ReconstructText inverts the BWT to recover the indexed text
// (without the sentinel). Merging uses it; queries never do.
func (ix *Index) ReconstructText(ctx context.Context) ([]byte, error) {
	bwt := make([]byte, 0, ix.n)
	for blk := 0; blk < ix.numBlocks; blk++ {
		data, err := ix.r.Component(ctx, ix.base+blk)
		if err != nil {
			return nil, err
		}
		bwt = append(bwt, data...)
	}
	if len(bwt) != ix.n {
		return nil, fmt.Errorf("fmindex: BWT blocks sum to %d bytes, want %d", len(bwt), ix.n)
	}
	full := invertBWT(bwt)
	return full[:len(full)-1], nil // drop sentinel
}

// Merge combines several FM-indices into one file by reconstructing
// each source text from its BWT, concatenating, and rebuilding — the
// compute-heavy compaction step of Section IV-C. fileMaps[i] rebases
// source i's file numbers into the merged file table; pages of
// unmapped files are dropped from the page table (their text spans
// remain but resolve to no ref).
func Merge(ctx context.Context, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindFM)
	if err := MergeInto(ctx, b, sources, fileMaps, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// MergeInto is Merge appending to an existing builder, mirroring
// BuildInto.
func MergeInto(ctx context.Context, b *component.Builder, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) error {
	if len(sources) != len(fileMaps) {
		return fmt.Errorf("fmindex: %d sources but %d file maps", len(sources), len(fileMaps))
	}
	var text []byte
	var pageStarts []int64
	var refs []postings.PageRef
	for i, src := range sources {
		part, err := src.ReconstructText(ctx)
		if err != nil {
			return err
		}
		starts, srcRefs := src.PageStartsAndRefs()
		base := int64(len(text))
		for j, s := range starts {
			mapped, ok := fileMaps[i][srcRefs[j].File]
			if !ok {
				continue
			}
			pageStarts = append(pageStarts, base+s)
			refs = append(refs, postings.PageRef{File: mapped, Page: srcRefs[j].Page})
		}
		text = append(text, part...)
		// Separate sources so patterns cannot span them.
		text = append(text, Separator)
	}
	if len(text) > 0 {
		text = text[:len(text)-1]
	}
	if len(pageStarts) == 0 || pageStarts[0] != 0 {
		// Ensure a leading page entry so every position maps somewhere.
		pageStarts = append([]int64{0}, pageStarts...)
		refs = append([]postings.PageRef{{File: ^uint32(0), Page: 0}}, refs...)
	}
	return BuildInto(b, text, pageStarts, refs, opts)
}
