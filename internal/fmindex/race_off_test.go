//go:build !race

package fmindex

const raceEnabled = false
