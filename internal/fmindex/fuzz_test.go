package fmindex

import (
	"context"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
)

// FuzzFMIndexOpen treats arbitrary bytes as a whole index object and
// drives the full deserialization path — component directory parse,
// root decode, then count/lookup queries. Corrupted files must error
// (or at worst return wrong refs, which in-situ probing filters);
// they must never panic.
func FuzzFMIndexOpen(f *testing.F) {
	// Seed with a small valid index so mutation explores the deep
	// decode paths, not just the magic check.
	text := []byte("the quick brown fox jumps over the lazy dog\x01" +
		"pack my box with five dozen liquor jugs\x01")
	valid, err := Build(text, []int64{0}, []postings.PageRef{{}}, BuildOptions{
		BlockSize: 256, PageMapBlock: 256,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RCF1"))
	// A plausible trailer with an oversized directory length.
	trailer := make([]byte, 20)
	trailer[0] = 0xFF
	trailer[1] = 0xFF
	copy(trailer[16:], "RCF1")
	f.Add(trailer)

	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := context.Background()
		store := objectstore.NewMemStore(nil)
		if err := store.Put(ctx, "fuzz.index", data); err != nil {
			t.Skip()
		}
		r, err := component.Open(ctx, store, "fuzz.index", component.OpenOptions{})
		if err != nil {
			return
		}
		ix, err := Open(ctx, r)
		if err != nil {
			return
		}
		for _, p := range [][]byte{[]byte("the"), []byte("quick"), []byte("zzz")} {
			ix.Count(ctx, p)
			ix.Lookup(ctx, p, 20)
		}
	})
}
