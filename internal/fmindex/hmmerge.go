package fmindex

import (
	"bytes"
	"fmt"
	"sort"
)

// This file implements merging of multi-string BWTs by interleave
// refinement, the technique of Holt & McMillan ("Merging of
// multi-string BWTs with applications", Bioinformatics 2014) that the
// paper cites for FM-index compaction (Section V-C2), with bounded
// interleave iterations.
//
// A multi-string BWT is the BWT of a *collection* of strings, each
// terminated by the sentinel: all suffixes of all strings are sorted
// together (a suffix never crosses its own sentinel; identical
// suffixes tie-break by string order), and the transform emits the
// character preceding each suffix. The key property is that the BWT
// of the union collection A ∪ B is an exact interleave of the BWTs of
// A and B — each source transform appears in order, merely
// interspersed — so merging reduces to computing the interleave
// vector, which the refinement loop below does in O(iterations × n)
// without decoding the texts.
//
// The production compaction path (Merge) still reconstructs and
// rebuilds, because the index's page map rides on a single-sentinel
// concatenated BWT; MergeBWT is the faithful algorithmic substrate,
// fully cross-checked against naive construction in tests, and
// MultiStringBWT is the collection-form transform it operates on.

// MultiStringBWT computes the multi-string BWT of the collection:
// docs[i] must not contain the sentinel; a sentinel is appended to
// each conceptually. Suffix ties (identical suffixes from different
// docs) break by document order.
func MultiStringBWT(docs [][]byte) ([]byte, error) {
	type suffix struct {
		doc int
		pos int // 0..len(doc): pos == len(doc) is the sentinel suffix
	}
	var n int
	for i, d := range docs {
		if bytes.IndexByte(d, Sentinel) >= 0 {
			return nil, fmt.Errorf("fmindex: doc %d contains the sentinel", i)
		}
		n += len(d) + 1
	}
	suffixes := make([]suffix, 0, n)
	for di, d := range docs {
		for p := 0; p <= len(d); p++ {
			suffixes = append(suffixes, suffix{doc: di, pos: p})
		}
	}
	less := func(a, b suffix) bool {
		sa := docs[a.doc][a.pos:]
		sb := docs[b.doc][b.pos:]
		// Compare the in-string parts; the implicit trailing
		// sentinel is smaller than any byte.
		minLen := len(sa)
		if len(sb) < minLen {
			minLen = len(sb)
		}
		if c := bytes.Compare(sa[:minLen], sb[:minLen]); c != 0 {
			return c < 0
		}
		if len(sa) != len(sb) {
			return len(sa) < len(sb) // shorter hits its sentinel first
		}
		return a.doc < b.doc // identical suffixes: document order
	}
	sort.SliceStable(suffixes, func(i, j int) bool { return less(suffixes[i], suffixes[j]) })
	out := make([]byte, n)
	for i, s := range suffixes {
		if s.pos == 0 {
			// Preceding character of the whole-string suffix is the
			// string's terminator.
			out[i] = Sentinel
		} else {
			out[i] = docs[s.doc][s.pos-1]
		}
	}
	return out, nil
}

// MergeBWT merges the multi-string BWTs of two collections into the
// multi-string BWT of their union (A's documents ordered before B's),
// using Holt-McMillan interleave refinement. maxIters bounds the
// refinement loop (the paper's "bounded interleave iterations");
// zero means no bound beyond the theoretical maximum. It returns the
// merged BWT and the number of iterations used, or an error if the
// bound was hit before convergence.
func MergeBWT(bwtA, bwtB []byte, maxIters int) ([]byte, int, error) {
	nA, nB := len(bwtA), len(bwtB)
	n := nA + nB
	if maxIters <= 0 {
		maxIters = n + 1
	}

	// interleave[j] = true if merged position j comes from B.
	cur := make([]bool, n)
	for j := nA; j < n; j++ {
		cur[j] = true
	}
	next := make([]bool, n)

	// Bucket offsets by symbol across both inputs.
	var counts [256]int
	for _, c := range bwtA {
		counts[c]++
	}
	for _, c := range bwtB {
		counts[c]++
	}
	var starts [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		starts[c] = sum
		sum += counts[c]
	}

	// The sentinel bucket is special: in a multi-string BWT the k
	// sentinel-preceded rows (whole-string suffixes) map to the k
	// sentinel rows, whose order is DOCUMENT order — all of A's
	// documents before all of B's — not the current interleave
	// order. Pre-compute the bucket's fixed contents.
	sentinelsA := 0
	for _, c := range bwtA {
		if c == Sentinel {
			sentinelsA++
		}
	}

	iters := 0
	for ; iters < maxIters; iters++ {
		// One stable radix pass: walk the current interleave,
		// reading each source transform in order, and scatter each
		// position into its symbol's bucket. This extends the sorted
		// context of every row by one character.
		var offsets [256]int
		copy(offsets[:], starts[:])
		// Fill the sentinel bucket by document order up front.
		for i := 0; i < counts[Sentinel]; i++ {
			next[starts[Sentinel]+i] = i >= sentinelsA
		}
		offsets[Sentinel] = starts[Sentinel] + counts[Sentinel]
		iA, iB := 0, 0
		for j := 0; j < n; j++ {
			var c byte
			fromB := cur[j]
			if fromB {
				c = bwtB[iB]
				iB++
			} else {
				c = bwtA[iA]
				iA++
			}
			if c == Sentinel {
				continue // placed above
			}
			next[offsets[c]] = fromB
			offsets[c]++
		}
		if boolsEqual(cur, next) {
			break
		}
		cur, next = next, cur
	}
	if iters == maxIters {
		return nil, iters, fmt.Errorf("fmindex: interleave refinement did not converge within %d iterations", maxIters)
	}

	// Materialize the merged transform along the interleave.
	out := make([]byte, n)
	iA, iB := 0, 0
	for j := 0; j < n; j++ {
		if cur[j] {
			out[j] = bwtB[iB]
			iB++
		} else {
			out[j] = bwtA[iA]
			iA++
		}
	}
	return out, iters + 1, nil
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
