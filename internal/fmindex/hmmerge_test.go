package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDocs(rng *rand.Rand, count, maxLen, alphabet int) [][]byte {
	docs := make([][]byte, count)
	for i := range docs {
		n := 1 + rng.Intn(maxLen)
		d := make([]byte, n)
		for j := range d {
			d[j] = byte(2 + rng.Intn(alphabet))
		}
		docs[i] = d
	}
	return docs
}

func TestMultiStringBWTSmall(t *testing.T) {
	// Single doc "ab": suffixes "$"(implicit), "ab$", "b$" sort as
	// "$" < "ab$" < "b$"; preceding chars: 'b', '$', 'a'.
	bwt, err := MultiStringBWT([][]byte{[]byte("ab")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bwt, []byte{'b', Sentinel, 'a'}) {
		t.Fatalf("bwt = %q", bwt)
	}
	// Sentinel in a doc is rejected.
	if _, err := MultiStringBWT([][]byte{{1, 0, 2}}); err == nil {
		t.Fatal("sentinel-containing doc accepted")
	}
}

func TestMultiStringBWTSymbolCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := randDocs(rng, 10, 50, 4)
	bwt, err := MultiStringBWT(docs)
	if err != nil {
		t.Fatal(err)
	}
	var want, got [256]int
	total := 0
	for _, d := range docs {
		for _, c := range d {
			want[c]++
		}
		want[Sentinel]++
		total += len(d) + 1
	}
	if len(bwt) != total {
		t.Fatalf("bwt length %d, want %d", len(bwt), total)
	}
	for _, c := range bwt {
		got[c]++
	}
	if got != want {
		t.Fatal("bwt is not a permutation of the collection's symbols")
	}
}

func TestMergeBWTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		docsA := randDocs(rng, 1+rng.Intn(6), 40, 2+rng.Intn(6))
		docsB := randDocs(rng, 1+rng.Intn(6), 40, 2+rng.Intn(6))
		bwtA, err := MultiStringBWT(docsA)
		if err != nil {
			t.Fatal(err)
		}
		bwtB, err := MultiStringBWT(docsB)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MultiStringBWT(append(append([][]byte{}, docsA...), docsB...))
		if err != nil {
			t.Fatal(err)
		}
		got, iters, err := MergeBWT(bwtA, bwtB, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: merged BWT differs from naive union", trial)
		}
		if iters > len(got)+1 {
			t.Fatalf("trial %d: %d iterations", trial, iters)
		}
	}
}

func TestMergeBWTBoundedIterations(t *testing.T) {
	// Deep shared contexts need more refinement passes than shallow
	// ones; a too-small bound must error rather than return a wrong
	// transform.
	docsA := [][]byte{bytes.Repeat([]byte{5, 6}, 40)}
	docsB := [][]byte{bytes.Repeat([]byte{5, 6}, 39)}
	bwtA, _ := MultiStringBWT(docsA)
	bwtB, _ := MultiStringBWT(docsB)
	if _, _, err := MergeBWT(bwtA, bwtB, 2); err == nil {
		t.Fatal("under-bounded merge did not report non-convergence")
	}
	got, iters, err := MergeBWT(bwtA, bwtB, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MultiStringBWT(append(docsA, docsB...))
	if !bytes.Equal(got, want) {
		t.Fatal("unbounded merge wrong")
	}
	if iters < 3 {
		t.Fatalf("deep contexts converged suspiciously fast: %d iterations", iters)
	}
}

func TestMergeBWTIsAnInterleave(t *testing.T) {
	// The merged transform must contain each source transform as a
	// subsequence in original order.
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		docsA := randDocs(rngA, 1+rngA.Intn(4), 30, 4)
		docsB := randDocs(rngB, 1+rngB.Intn(4), 30, 4)
		bwtA, _ := MultiStringBWT(docsA)
		bwtB, _ := MultiStringBWT(docsB)
		merged, _, err := MergeBWT(bwtA, bwtB, 0)
		if err != nil {
			return false
		}
		return isSubsequence(bwtA, merged) && isSubsequence(bwtB, merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// isSubsequence is a greedy subsequence check — valid here because a
// correct interleave always admits the greedy embedding.
func isSubsequence(sub, full []byte) bool {
	i := 0
	for _, c := range full {
		if i < len(sub) && sub[i] == c {
			i++
		}
	}
	return i == len(sub)
}

func TestMergeBWTEmptySides(t *testing.T) {
	docs := randDocs(rand.New(rand.NewSource(3)), 3, 20, 4)
	bwt, _ := MultiStringBWT(docs)
	got, _, err := MergeBWT(bwt, nil, 0)
	if err != nil || !bytes.Equal(got, bwt) {
		t.Fatalf("merge with empty B: %v", err)
	}
	got, _, err = MergeBWT(nil, bwt, 0)
	if err != nil || !bytes.Equal(got, bwt) {
		t.Fatalf("merge with empty A: %v", err)
	}
}
