package fmindex

import (
	"sort"

	"rottnest/internal/component"
	"rottnest/internal/postings"
)

// ReferenceBuild constructs an FM-index file with the original serial
// build path: prefix-doubling suffix array, serial BWT derivation,
// per-block serial encoding, and a per-SA-entry binary search for the
// position→page map. It is retained verbatim as the baseline for the
// build benchmark and as the oracle for the byte-identity differential
// test — Build must emit exactly these bytes for any input.
func ReferenceBuild(text []byte, pageStarts []int64, refs []postings.PageRef, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindFM)
	if err := referenceBuildInto(b, text, pageStarts, refs, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

func referenceBuildInto(b *component.Builder, text []byte, pageStarts []int64, refs []postings.PageRef, opts BuildOptions) error {
	opts = opts.withDefaults()
	if err := validateBuildInput(text, pageStarts, refs); err != nil {
		return err
	}

	full := make([]byte, 0, len(text)+1)
	full = append(full, text...)
	full = append(full, Sentinel)
	sa := ReferenceSuffixArray(full)
	n := len(full)
	bwt := make([]byte, n)
	for i, s := range sa {
		if s == 0 {
			bwt[i] = full[n-1]
		} else {
			bwt[i] = full[s-1]
		}
	}

	base := b.NumComponents()

	// BWT blocks + checkpoint deltas, one serial pass.
	numBlocks := (n + opts.BlockSize - 1) / opts.BlockSize
	checkDeltas := make([][256]uint32, numBlocks)
	for blk := 0; blk < numBlocks; blk++ {
		lo := blk * opts.BlockSize
		hi := lo + opts.BlockSize
		if hi > n {
			hi = n
		}
		for _, c := range bwt[lo:hi] {
			checkDeltas[blk][c]++
		}
		b.Add(bwt[lo:hi])
	}

	// Page-map blocks: page ordinal of SA[i], binary search per entry.
	pageOf := func(pos int32) uint32 {
		idx := sort.Search(len(pageStarts), func(j int) bool { return pageStarts[j] > int64(pos) }) - 1
		if idx < 0 {
			idx = 0
		}
		return uint32(idx)
	}
	numPMBlocks := (n + opts.PageMapBlock - 1) / opts.PageMapBlock
	bits := bitsFor(uint32(len(pageStarts)))
	for blk := 0; blk < numPMBlocks; blk++ {
		lo := blk * opts.PageMapBlock
		hi := lo + opts.PageMapBlock
		if hi > n {
			hi = n
		}
		entries := make([]uint32, hi-lo)
		for i := lo; i < hi; i++ {
			pos := sa[i]
			if int(pos) == n-1 {
				pos = 0 // sentinel row; never queried
			}
			entries[i-lo] = pageOf(pos)
		}
		b.Add(packBits(entries, bits))
	}

	b.Add(encodeRoot(n, base, opts, numBlocks, numPMBlocks, checkDeltas, pageStarts, refs))
	return nil
}

// ReferenceSuffixArray computes the suffix array of text using prefix
// doubling with radix (counting) sort, O(n log n). This is the
// original builder, retained verbatim as the oracle for the SA-IS
// differential tests (TestSAISMatchesReference, FuzzSuffixArray) and
// the build benchmark's speedup baseline. The text handed in already
// carries its unique smallest sentinel as the final byte, so all
// suffixes are distinct.
func ReferenceSuffixArray(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	rank := make([]int32, n)
	tmp := make([]int32, n)
	newRank := make([]int32, n)

	// Initial pass: sort suffixes by first byte.
	var cnt [257]int
	for _, c := range text {
		cnt[int(c)+1]++
	}
	for i := 1; i < 257; i++ {
		cnt[i] += cnt[i-1]
	}
	pos := cnt
	for i := 0; i < n; i++ {
		c := text[i]
		sa[pos[c]] = int32(i)
		pos[c]++
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if text[sa[i]] != text[sa[i-1]] {
			rank[sa[i]]++
		}
	}

	count := make([]int, n+1)
	for k := 1; ; k <<= 1 {
		if int(rank[sa[n-1]]) == n-1 {
			break // all ranks distinct
		}
		// Order by second key (rank[i+k], absent = smallest): the
		// suffixes with i+k >= n come first, then the rest in the
		// order of the current sa scanned left to right.
		idx := 0
		for i := n - k; i < n; i++ {
			tmp[idx] = int32(i)
			idx++
		}
		for _, s := range sa {
			if int(s) >= k {
				tmp[idx] = s - int32(k)
				idx++
			}
		}
		// Stable counting sort by first key rank[i].
		maxRank := int(rank[sa[n-1]]) + 1
		for i := 0; i <= maxRank; i++ {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[rank[i]+1]++
		}
		for i := 1; i <= maxRank; i++ {
			count[i] += count[i-1]
		}
		for _, s := range tmp {
			sa[count[rank[s]]] = s
			count[rank[s]]++
		}
		// Recompute ranks for the doubled prefix length.
		newRank[sa[0]] = 0
		for i := 1; i < n; i++ {
			newRank[sa[i]] = newRank[sa[i-1]]
			prev, cur := sa[i-1], sa[i]
			same := rank[prev] == rank[cur]
			if same {
				pk, ck := int(prev)+k, int(cur)+k
				switch {
				case pk >= n && ck >= n:
					// both empty second halves: equal
				case pk >= n || ck >= n:
					same = false
				default:
					same = rank[pk] == rank[ck]
				}
			}
			if !same {
				newRank[sa[i]]++
			}
		}
		rank, newRank = newRank, rank
	}
	return sa
}
