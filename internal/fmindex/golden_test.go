package fmindex

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// fmGoldenHash is the SHA-256 of the index file built by the original
// serial prefix-doubling implementation (the pre-SA-IS seed code) for
// goldenFMInput. The SA-IS + parallel-encode build path must keep
// emitting byte-identical files: the chaos harness and the figure
// reproductions depend on deterministic index bytes.
const fmGoldenHash = "6ab3a1bbc95233f6eeff557133885dc4777dd981510859d197c93a99702a5ae5"

func goldenFMInput() ([]byte, []int64, []postings.PageRef) {
	docs := workload.NewTextGen(workload.DefaultTextConfig(42)).Docs(300)
	var text []byte
	var starts []int64
	var refs []postings.PageRef
	for i, d := range docs {
		if i%10 == 0 {
			starts = append(starts, int64(len(text)))
			refs = append(refs, postings.PageRef{File: 0, Page: uint32(len(refs))})
		}
		text = append(text, []byte(d)...)
		text = append(text, Separator)
	}
	return text, starts, refs
}

func TestBuildGoldenBytes(t *testing.T) {
	text, starts, refs := goldenFMInput()
	opts := BuildOptions{BlockSize: 4096, PageMapBlock: 4096}
	data, err := Build(text, starts, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(data)
	if got := hex.EncodeToString(h[:]); got != fmGoldenHash {
		t.Fatalf("FM index bytes diverged from the seed build:\n got %s\nwant %s", got, fmGoldenHash)
	}

	// The parallel encode must be independent of the worker count.
	prev := runtime.GOMAXPROCS(1)
	serial, err := Build(text, starts, refs, opts)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, data) {
		t.Fatal("FM index bytes differ between GOMAXPROCS=1 and parallel build")
	}
}

// TestReferenceBuildMatchesProduction differentially checks the whole
// pipeline, not just the suffix array: the retained serial seed
// builder (prefix-doubling SA, serial encode, binary-search page map)
// and the SA-IS + parallel-encode path must emit identical files for
// identical input, at more than one block geometry.
func TestReferenceBuildMatchesProduction(t *testing.T) {
	text, starts, refs := goldenFMInput()
	for _, opts := range []BuildOptions{
		{},
		{BlockSize: 4096, PageMapBlock: 4096},
		{BlockSize: 1 << 10, PageMapBlock: 512},
	} {
		got, err := Build(text, starts, refs, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReferenceBuild(text, starts, refs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("opts %+v: production build bytes differ from the reference build", opts)
		}
	}
}

func TestPosPageTableMatchesSearch(t *testing.T) {
	// The O(n) table must agree with the binary-search definition
	// (largest j with pageStarts[j] <= pos) everywhere, including page
	// starts past the end of the text.
	cases := [][]int64{
		{0},
		{0, 1, 2, 3},
		{0, 5, 9, 100},
		{0, 7, 7 + 13},
	}
	const n = 40
	for ci, starts := range cases {
		table := buildPosPageTable(n, starts)
		for pos := 0; pos < n; pos++ {
			want := 0
			for j, s := range starts {
				if s <= int64(pos) {
					want = j
				}
			}
			if table[pos] != uint32(want) {
				t.Fatalf("case %d: table[%d] = %d, want %d", ci, pos, table[pos], want)
			}
		}
	}
}
