package fmindex

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"rottnest/internal/postings"
)

// This file implements the multi-pattern "superwalk": backward search
// for N distinct patterns run as one coordinated walk over the BWT.
// All patterns advance in lock-step, one character per step, and the
// occ checkpoint blocks every still-active pattern needs at a step are
// deduplicated and fetched in a single parallel fan, then kept in a
// per-walk memo so later steps touching the same block pay nothing.
// Backward searches converge toward the same C-table regions (every
// walk's first step needs only the final block; subsequent steps for
// patterns sharing trailing characters need the same blocks), so a
// batch of N patterns fetches each hot block once instead of once per
// pattern — the probe-side analogue of page-set intersection.
//
// Results are exactly those of N independent Count/Lookup calls: the
// walk only changes which request fetches a block, never what any
// pattern's [sp, ep) interval is.

// WalkStats reports the block-fetch accounting of one superwalk, for
// benchmarks and the client's probe counters.
type WalkStats struct {
	// OccFetched counts BWT checkpoint blocks fetched from the store
	// (one ranged GET each, before any byte-level caching below).
	OccFetched int
	// OccReused counts occ evaluations served from the walk's memo —
	// block reads that an independent walk would have re-fetched.
	OccReused int
	// PageMapFetched counts page-map blocks fetched during lookup
	// resolution, after deduplication across patterns.
	PageMapFetched int
}

// Add accumulates other into s.
func (s *WalkStats) Add(other WalkStats) {
	s.OccFetched += other.OccFetched
	s.OccReused += other.OccReused
	s.PageMapFetched += other.PageMapFetched
}

// walkState is one pattern's progress through the coordinated walk.
type walkState struct {
	pattern []byte
	sp, ep  int64
	dead    bool // interval emptied: the pattern has no matches
}

// occBlockOf returns the checkpoint block occ(c, i) needs, or -1 when
// the evaluation needs no block (i <= 0).
func (ix *Index) occBlockOf(i int64) int {
	if i <= 0 {
		return -1
	}
	if i >= int64(ix.n) {
		i = int64(ix.n)
	}
	return int((i - 1) / int64(ix.blockSize))
}

// occFrom evaluates occ(c, i) from an already-fetched block. blk must
// be occBlockOf(i) and block its decompressed payload; i <= 0 needs no
// block and returns 0.
func (ix *Index) occFrom(block []byte, c byte, i int64) int64 {
	if i <= 0 {
		return 0
	}
	if i >= int64(ix.n) {
		i = int64(ix.n)
	}
	blk := int((i - 1) / int64(ix.blockSize))
	base := ix.checkpoints[blk][c]
	within := i - int64(blk)*int64(ix.blockSize)
	if within > int64(len(block)) {
		// A corrupt file can ship a block shorter than the root's
		// geometry claims; counting what exists keeps this total.
		within = int64(len(block))
	}
	var count int64
	for _, b := range block[:within] {
		if b == c {
			count++
		}
	}
	return base + count
}

// fetchInto fetches the component ids missing from memo in one
// parallel fan and records them. ids are BWT-block ordinals (the
// caller adds ix.base / page-map offsets itself via toComponent).
func (ix *Index) fetchInto(ctx context.Context, memo map[int][]byte, need map[int]bool, toComponent func(int) int) (int, error) {
	missing := make([]int, 0, len(need))
	for blk := range need {
		if _, ok := memo[blk]; !ok {
			missing = append(missing, blk)
		}
	}
	if len(missing) == 0 {
		return 0, nil
	}
	sort.Ints(missing)
	ids := make([]int, len(missing))
	for i, blk := range missing {
		ids[i] = toComponent(blk)
	}
	blocks, err := ix.r.Components(ctx, ids)
	if err != nil {
		return 0, err
	}
	for i, blk := range missing {
		memo[blk] = blocks[i]
	}
	return len(missing), nil
}

// backwardMany runs backward search for every pattern in one
// coordinated walk, returning each pattern's [sp, ep) interval. The
// memo is shared across the whole walk: a block fetched at any step
// serves every later evaluation.
func (ix *Index) backwardMany(ctx context.Context, patterns [][]byte) ([]walkState, map[int][]byte, WalkStats, error) {
	var stats WalkStats
	states := make([]walkState, len(patterns))
	maxLen := 0
	for i, p := range patterns {
		if bytes.IndexByte(p, Sentinel) >= 0 {
			return nil, nil, stats, fmt.Errorf("fmindex: pattern contains the sentinel byte")
		}
		states[i] = walkState{pattern: p, sp: 0, ep: int64(ix.n)}
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	memo := make(map[int][]byte)
	need := make(map[int]bool)
	for step := 0; step < maxLen; step++ {
		// Gather the blocks every still-active pattern needs this step.
		clear(need)
		for i := range states {
			s := &states[i]
			if s.dead || step >= len(s.pattern) {
				continue
			}
			c := s.pattern[len(s.pattern)-1-step]
			if ix.totalSymbols[c] == 0 {
				s.dead = true
				s.sp, s.ep = 0, 0
				continue
			}
			for _, i64 := range [2]int64{s.sp, s.ep} {
				if blk := ix.occBlockOf(i64); blk >= 0 {
					if _, ok := memo[blk]; ok || need[blk] {
						stats.OccReused++
					}
					need[blk] = true
				}
			}
		}
		fetched, err := ix.fetchInto(ctx, memo, need, func(blk int) int { return ix.base + blk })
		if err != nil {
			return nil, nil, stats, err
		}
		stats.OccFetched += fetched
		// Advance every active pattern from the memo.
		for i := range states {
			s := &states[i]
			if s.dead || step >= len(s.pattern) {
				continue
			}
			c := s.pattern[len(s.pattern)-1-step]
			oSp := ix.occFrom(memo[ix.occBlockOf(s.sp)], c, s.sp)
			oEp := ix.occFrom(memo[ix.occBlockOf(s.ep)], c, s.ep)
			s.sp = ix.c[c] + oSp
			s.ep = ix.c[c] + oEp
			if s.sp >= s.ep {
				s.dead = true
				s.sp, s.ep = 0, 0
			}
		}
	}
	return states, memo, stats, nil
}

// CountMany returns the number of occurrences of each pattern, walking
// all patterns in one coordinated pass. Results are identical to N
// independent Count calls; checkpoint blocks shared between patterns
// (or between a pattern's own sp/ep bounds) are fetched once.
func (ix *Index) CountMany(ctx context.Context, patterns [][]byte) ([]int64, WalkStats, error) {
	states, _, stats, err := ix.backwardMany(ctx, patterns)
	if err != nil {
		return nil, stats, err
	}
	counts := make([]int64, len(states))
	for i, s := range states {
		counts[i] = s.ep - s.sp
	}
	return counts, stats, nil
}

// LookupManyBounded resolves every pattern to its distinct candidate
// pages in one coordinated walk. maxRows bounds the page-map entries
// read per pattern (nil or 0 entries mean unbounded, exactly as
// LookupBounded); truncated[i] reports whether pattern i's bound cut
// its match set. Page-map blocks are deduplicated across patterns and
// fetched in one fan.
func (ix *Index) LookupManyBounded(ctx context.Context, patterns [][]byte, maxRows []int) ([][]postings.PageRef, []bool, WalkStats, error) {
	if maxRows != nil && len(maxRows) != len(patterns) {
		return nil, nil, WalkStats{}, fmt.Errorf("fmindex: %d patterns but %d bounds", len(patterns), len(maxRows))
	}
	states, _, stats, err := ix.backwardMany(ctx, patterns)
	if err != nil {
		return nil, nil, stats, err
	}
	refs := make([][]postings.PageRef, len(states))
	truncated := make([]bool, len(states))

	// Clamp intervals and gather the page-map blocks all patterns need.
	type span struct{ sp, ep int64 }
	spans := make([]span, len(states))
	pmNeed := make(map[int]bool)
	for i := range states {
		s := states[i]
		if s.dead || s.sp >= s.ep {
			continue
		}
		bound := 0
		if maxRows != nil {
			bound = maxRows[i]
		}
		if bound > 0 && s.ep-s.sp > int64(bound) {
			s.ep = s.sp + int64(bound)
			truncated[i] = true
		}
		spans[i] = span{sp: s.sp, ep: s.ep}
		for blk := int(s.sp) / ix.pmBlock; blk <= int(s.ep-1)/ix.pmBlock; blk++ {
			pmNeed[blk] = true
		}
	}
	pmMemo := make(map[int][]byte)
	fetched, err := ix.fetchInto(ctx, pmMemo, pmNeed, func(blk int) int { return ix.base + ix.numBlocks + blk })
	if err != nil {
		return nil, nil, stats, err
	}
	stats.PageMapFetched += fetched

	bits := bitsFor(uint32(len(ix.refs)))
	for i := range states {
		sp, ep := spans[i].sp, spans[i].ep
		if sp >= ep {
			continue
		}
		seen := make(map[uint32]bool)
		var out []postings.PageRef
		for row := sp; row < ep; row++ {
			blk := int(row) / ix.pmBlock
			page, err := unpackBit(pmMemo[blk], int(row)-blk*ix.pmBlock, bits)
			if err != nil {
				return nil, nil, stats, fmt.Errorf("fmindex: page map block %d: %w", blk, err)
			}
			if !seen[page] {
				seen[page] = true
				if int(page) < len(ix.refs) && ix.refs[page].File != ^uint32(0) {
					out = append(out, ix.refs[page])
				}
			}
		}
		postings.Sort(out)
		refs[i] = out
	}
	return refs, truncated, stats, nil
}
