package fmindex

import "rottnest/internal/parallel"

// buildSuffixArray computes the suffix array of text with SA-IS
// (suffix array by induced sorting over LMS substrings), O(n) on the
// byte alphabet. The text handed in already carries its unique
// smallest sentinel as the final byte (BuildInto appends it), which
// the induction relies on: the sentinel anchors the type
// classification and makes all suffixes distinct.
//
// The previous prefix-doubling builder is retained as
// ReferenceSuffixArray and serves as the differential-test and
// benchmark oracle.
func buildSuffixArray(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	sais(text, sa, 256)
	return sa
}

// SuffixArray exposes the production SA-IS builder for benchmarks and
// diagnostics. text must end with a unique smallest sentinel byte.
func SuffixArray(text []byte) []int32 {
	return buildSuffixArray(text)
}

// saEmpty marks an unfilled suffix-array slot during induction.
const saEmpty = int32(-1)

// symbol constrains the string element types SA-IS runs over: bytes
// at the top level, int32 names in recursion. Keeping the top level on
// raw bytes halves its memory traffic versus widening to int32 first.
type symbol interface{ ~byte | ~int32 }

// bitset is a packed bool array. The suffix-type table is the one
// randomly-probed structure in the induce passes; packing it to bits
// keeps it cache-resident (128 KiB per MiB of text instead of 1 MiB),
// which is worth ~20% on the whole build.
type bitset []uint64

func newBitset(n int) bitset      { return make(bitset, (n+63)/64) }
func (b bitset) get(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i int32)      { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// sais fills sa with the suffix array of s. Values of s lie in
// [0, sigma) and the final element is the unique minimum. The
// invariant holds at every recursion level by construction: the
// sentinel's LMS substring is unique and sorts first, so it is named
// 0, and it is the last LMS in appearance order — the reduced string
// therefore also ends with a unique minimum.
func sais[T symbol](s []T, sa []int32, sigma int) {
	n := len(s)
	if n == 0 {
		return
	}
	if n == 1 {
		sa[0] = 0
		return
	}

	// Classify suffixes: isS.get(i) reports that suffix i is S-type
	// (smaller than suffix i+1). The sentinel is S by convention.
	isS := newBitset(n)
	isS.set(int32(n - 1))
	for i := n - 2; i >= 0; i-- {
		if s[i] < s[i+1] || (s[i] == s[i+1] && isS.get(int32(i+1))) {
			isS.set(int32(i))
		}
	}

	// Bucket geometry per symbol.
	bkt := make([]int32, sigma)
	for _, c := range s {
		bkt[c]++
	}
	heads := make([]int32, sigma)
	tails := make([]int32, sigma)
	setHeads := func() {
		var sum int32
		for c, cnt := range bkt {
			heads[c] = sum
			sum += cnt
		}
	}
	setTails := func() {
		var sum int32
		for c, cnt := range bkt {
			sum += cnt
			tails[c] = sum
		}
	}

	// induce derives the order of all suffixes from the (partially)
	// placed S-type suffixes currently in sa: a left-to-right pass
	// places L-type predecessors at bucket heads, then a right-to-left
	// pass re-places S-type predecessors at bucket tails.
	induce := func() {
		setHeads()
		for i := 0; i < n; i++ {
			if j := sa[i]; j > 0 && !isS.get(j-1) {
				c := s[j-1]
				sa[heads[c]] = j - 1
				heads[c]++
			}
		}
		setTails()
		for i := n - 1; i >= 0; i-- {
			if j := sa[i]; j > 0 && isS.get(j-1) {
				c := s[j-1]
				tails[c]--
				sa[tails[c]] = j - 1
			}
		}
	}

	// Pass 1: drop the LMS positions at their bucket tails in any
	// order and induce; afterwards the LMS suffixes appear in sa in
	// the order of their LMS substrings.
	for i := range sa {
		sa[i] = saEmpty
	}
	setTails()
	m := 0
	for i := 1; i < n; i++ {
		if isS.get(int32(i)) && !isS.get(int32(i-1)) {
			c := s[i]
			tails[c]--
			sa[tails[c]] = int32(i)
			m++
		}
	}
	induce()

	// Compact the sorted LMS suffixes to the front of sa.
	k := 0
	for i := 0; i < n; i++ {
		if j := sa[i]; j > 0 && isS.get(j) && !isS.get(j-1) {
			sa[k] = j
			k++
		}
	}

	// Name LMS substrings in sorted order. LMS positions are never
	// adjacent, so pos/2 indexes a scratch table that fits in the
	// unused tail of sa.
	names := sa[m:]
	for i := range names {
		names[i] = saEmpty
	}
	var name int32
	prev := int32(-1)
	for i := 0; i < m; i++ {
		cur := sa[i]
		if prev >= 0 && !lmsEqual(s, isS, prev, cur) {
			name++
		}
		names[cur>>1] = name
		prev = cur
	}
	numNames := int(name) + 1

	if numNames < m {
		// Duplicate substrings: recurse on the reduced string of LMS
		// names in appearance order to rank the LMS suffixes.
		s1 := make([]int32, m)
		lmsPos := make([]int32, m)
		k = 0
		for i := 1; i < n; i++ {
			if isS.get(int32(i)) && !isS.get(int32(i-1)) {
				lmsPos[k] = int32(i)
				s1[k] = names[i>>1]
				k++
			}
		}
		sa1 := sa[:m]
		sais(s1, sa1, numNames)
		for i := 0; i < m; i++ {
			sa1[i] = lmsPos[sa1[i]]
		}
	}
	// else: all names unique, so LMS-substring order (already in
	// sa[:m]) is LMS-suffix order.

	// Pass 2: re-place the now fully sorted LMS suffixes at their
	// bucket tails (descending scan never overwrites an unread entry)
	// and induce the final order.
	for i := m; i < n; i++ {
		sa[i] = saEmpty
	}
	setTails()
	for i := m - 1; i >= 0; i-- {
		j := sa[i]
		sa[i] = saEmpty
		c := s[j]
		tails[c]--
		sa[tails[c]] = j
	}
	induce()
}

// lmsEqual reports whether the LMS substrings starting at a and b are
// identical. Equal characters up to a shared next-LMS boundary imply
// equal types, so comparing characters and boundaries suffices. The
// sentinel's substring never equals another (the sentinel is unique),
// and the scan cannot run off the string: the final position is LMS
// and its symbol differs from everything else.
func lmsEqual[T symbol](s []T, isS bitset, a, b int32) bool {
	n := int32(len(s))
	if a == n-1 || b == n-1 {
		return false
	}
	for d := int32(1); ; d++ {
		if s[a+d-1] != s[b+d-1] {
			return false
		}
		aLMS := isS.get(a+d) && !isS.get(a+d-1)
		bLMS := isS.get(b+d) && !isS.get(b+d-1)
		if aLMS || bLMS {
			return aLMS && bLMS && s[a+d] == s[b+d]
		}
	}
}

// bwtFromSA derives the Burrows-Wheeler transform from the suffix
// array: bwt[i] = text[sa[i]-1] (wrapping to the sentinel). The pass
// is embarrassingly parallel; each output index depends only on its
// own suffix-array entry.
func bwtFromSA(text []byte, sa []int32) []byte {
	n := len(text)
	bwt := make([]byte, n)
	parallel.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := sa[i]
			if s == 0 {
				bwt[i] = text[n-1]
			} else {
				bwt[i] = text[s-1]
			}
		}
	})
	return bwt
}

// invertBWT reconstructs the original text (sentinel included) from
// its BWT. Used by index merging, which the paper notes may be
// computationally intensive. The LF walk is a sequential pointer
// chase and stays serial.
func invertBWT(bwt []byte) []byte {
	n := len(bwt)
	// C[c] = number of symbols smaller than c.
	var counts [256]int
	for _, c := range bwt {
		counts[c]++
	}
	var c0 [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		c0[c] = sum
		sum += counts[c]
	}
	// LF mapping: lf[i] = C[bwt[i]] + occ(bwt[i], i).
	lf := make([]int32, n)
	var running [256]int
	for i, c := range bwt {
		lf[i] = int32(c0[c] + running[c])
		running[c]++
	}
	// The sentinel (smallest, unique) sorts to row 0. Walk backwards
	// from it.
	out := make([]byte, n)
	row := int32(0)
	for i := n - 1; i >= 0; i-- {
		out[i] = bwt[row]
		row = lf[row]
	}
	// The walk starting at row 0 yields the rotation that begins with
	// the sentinel; rotate left by one to restore "text + sentinel".
	return append(out[1:], out[0])
}
