package fmindex

// buildSuffixArray computes the suffix array of text using prefix
// doubling with radix (counting) sort, O(n log n). The text handed in
// already carries its unique smallest sentinel as the final byte, so
// all suffixes are distinct.
func buildSuffixArray(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	newRank := make([]int32, n)

	// Initial pass: sort suffixes by first byte.
	var cnt [257]int
	for _, c := range text {
		cnt[int(c)+1]++
	}
	for i := 1; i < 257; i++ {
		cnt[i] += cnt[i-1]
	}
	pos := cnt
	for i := 0; i < n; i++ {
		c := text[i]
		sa[pos[c]] = int32(i)
		pos[c]++
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if text[sa[i]] != text[sa[i-1]] {
			rank[sa[i]]++
		}
	}

	count := make([]int, n+1)
	for k := 1; ; k <<= 1 {
		if int(rank[sa[n-1]]) == n-1 {
			break // all ranks distinct
		}
		// Order by second key (rank[i+k], absent = smallest): the
		// suffixes with i+k >= n come first, then the rest in the
		// order of the current sa scanned left to right.
		idx := 0
		for i := n - k; i < n; i++ {
			tmp[idx] = int32(i)
			idx++
		}
		for _, s := range sa {
			if int(s) >= k {
				tmp[idx] = s - int32(k)
				idx++
			}
		}
		// Stable counting sort by first key rank[i].
		maxRank := int(rank[sa[n-1]]) + 1
		for i := 0; i <= maxRank; i++ {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[rank[i]+1]++
		}
		for i := 1; i <= maxRank; i++ {
			count[i] += count[i-1]
		}
		for _, s := range tmp {
			sa[count[rank[s]]] = s
			count[rank[s]]++
		}
		// Recompute ranks for the doubled prefix length.
		newRank[sa[0]] = 0
		for i := 1; i < n; i++ {
			newRank[sa[i]] = newRank[sa[i-1]]
			prev, cur := sa[i-1], sa[i]
			same := rank[prev] == rank[cur]
			if same {
				pk, ck := int(prev)+k, int(cur)+k
				switch {
				case pk >= n && ck >= n:
					// both empty second halves: equal
				case pk >= n || ck >= n:
					same = false
				default:
					same = rank[pk] == rank[ck]
				}
			}
			if !same {
				newRank[sa[i]]++
			}
		}
		rank, newRank = newRank, rank
	}
	return sa
}

// bwtFromSA derives the Burrows-Wheeler transform from the suffix
// array: bwt[i] = text[sa[i]-1] (wrapping to the sentinel).
func bwtFromSA(text []byte, sa []int32) []byte {
	n := len(text)
	bwt := make([]byte, n)
	for i, s := range sa {
		if s == 0 {
			bwt[i] = text[n-1]
		} else {
			bwt[i] = text[s-1]
		}
	}
	return bwt
}

// invertBWT reconstructs the original text (sentinel included) from
// its BWT. Used by index merging, which the paper notes may be
// computationally intensive.
func invertBWT(bwt []byte) []byte {
	n := len(bwt)
	// C[c] = number of symbols smaller than c.
	var counts [256]int
	for _, c := range bwt {
		counts[c]++
	}
	var c0 [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		c0[c] = sum
		sum += counts[c]
	}
	// LF mapping: lf[i] = C[bwt[i]] + occ(bwt[i], i).
	lf := make([]int32, n)
	var running [256]int
	for i, c := range bwt {
		lf[i] = int32(c0[c] + running[c])
		running[c]++
	}
	// The sentinel (smallest, unique) sorts to row 0. Walk backwards
	// from it.
	out := make([]byte, n)
	row := int32(0)
	for i := n - 1; i >= 0; i-- {
		out[i] = bwt[row]
		row = lf[row]
	}
	// The walk starting at row 0 yields the rotation that begins with
	// the sentinel; rotate left by one to restore "text + sentinel".
	return append(out[1:], out[0])
}
