package fmindex

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/workload"
)

// superwalkPatterns is a mixed batch exercising every walk path:
// shared suffixes (block sharing), no-match, dead-symbol, empty, and
// single-char patterns.
func superwalkPatterns(docs []string) [][]byte {
	return [][]byte{
		[]byte(docs[10][:12]),
		[]byte(docs[10][4:16]), // overlaps the first
		[]byte(docs[200][:8]),
		[]byte(docs[200][:24]), // shares a prefix with the previous
		[]byte("no such needle anywhere"),
		{0xFE, 0xFD}, // symbols absent from the text generator
		{},           // empty pattern: matches every row
		[]byte(docs[300][2:3]),
	}
}

func TestSuperwalkMatchesSingleton(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(21)).Docs(400)
	ix, _, _ := buildTestIndex(t, store, "fm.index", docs, 25, BuildOptions{BlockSize: 512, PageMapBlock: 512})

	patterns := superwalkPatterns(docs)
	counts, _, err := ix.CountMany(ctx, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		want, err := ix.Count(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Errorf("CountMany(%q) = %d, want %d", p, counts[i], want)
		}
	}

	for _, maxRows := range []int{0, 1, 7, 1000} {
		bounds := make([]int, len(patterns))
		for i := range bounds {
			bounds[i] = maxRows
		}
		refs, trunc, _, err := ix.LookupManyBounded(ctx, patterns, bounds)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range patterns {
			wantRefs, wantTrunc, err := ix.LookupBounded(ctx, p, maxRows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refs[i], wantRefs) {
				t.Errorf("LookupManyBounded(%q, %d) = %v, want %v", p, maxRows, refs[i], wantRefs)
			}
			if trunc[i] != wantTrunc {
				t.Errorf("LookupManyBounded(%q, %d) truncated = %v, want %v", p, maxRows, trunc[i], wantTrunc)
			}
		}
	}

	// Per-pattern bounds differ: each pattern honors its own.
	bounds := make([]int, len(patterns))
	for i := range bounds {
		bounds[i] = 1 + i*3
	}
	refs, trunc, _, err := ix.LookupManyBounded(ctx, patterns, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		wantRefs, wantTrunc, err := ix.LookupBounded(ctx, p, bounds[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refs[i], wantRefs) || trunc[i] != wantTrunc {
			t.Errorf("per-pattern bound %d for %q: got %v/%v want %v/%v",
				bounds[i], p, refs[i], trunc[i], wantRefs, wantTrunc)
		}
	}
}

func TestSuperwalkSentinelPatternErrors(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(3)).Docs(50)
	ix, _, _ := buildTestIndex(t, store, "fm.index", docs, 10, BuildOptions{BlockSize: 512, PageMapBlock: 512})
	if _, _, err := ix.CountMany(ctx, [][]byte{[]byte("ok"), {'a', Sentinel, 'b'}}); err == nil {
		t.Fatal("CountMany accepted a pattern containing the sentinel")
	}
	if _, _, _, err := ix.LookupManyBounded(ctx, [][]byte{{Sentinel}}, nil); err == nil {
		t.Fatal("LookupManyBounded accepted a sentinel pattern")
	}
	if _, _, _, err := ix.LookupManyBounded(ctx, [][]byte{{'a'}, {'b'}}, []int{1}); err == nil {
		t.Fatal("LookupManyBounded accepted mismatched bounds")
	}
}

// TestSuperwalkDedupesFetches pins the tentpole win: a batch of
// patterns walked together issues strictly fewer store GETs than the
// same patterns walked independently, and WalkStats accounts for the
// reuse.
func TestSuperwalkDedupesFetches(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	docs := workload.NewTextGen(workload.DefaultTextConfig(9)).Docs(500)
	buildTestIndex(t, inner, "fm.index", docs, 50, BuildOptions{BlockSize: 1024, PageMapBlock: 1024})
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())

	// NoRetain keeps the reader's component cache out of the picture so
	// GET counts reflect the walks themselves; a small tail read keeps
	// the leaf components out of the open's speculative fetch.
	open := func() *Index {
		r, err := component.Open(ctx, store, "fm.index", component.OpenOptions{TailBytes: 4 << 10, NoRetain: true})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Open(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	patterns := make([][]byte, 8)
	for i := range patterns {
		patterns[i] = []byte(docs[i*37][:12])
	}

	single := open()
	before := metrics.Snapshot()
	for _, p := range patterns {
		if _, err := single.Count(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	singleGets := metrics.Snapshot().Sub(before).Gets

	batch := open()
	before = metrics.Snapshot()
	_, stats, err := batch.CountMany(ctx, patterns)
	if err != nil {
		t.Fatal(err)
	}
	batchGets := metrics.Snapshot().Sub(before).Gets

	if batchGets >= singleGets {
		t.Fatalf("superwalk issued %d GETs, singletons %d — no dedup", batchGets, singleGets)
	}
	if stats.OccFetched == 0 || stats.OccReused == 0 {
		t.Fatalf("WalkStats = %+v, want nonzero fetched and reused", stats)
	}
	if int64(stats.OccFetched) != batchGets {
		t.Fatalf("WalkStats.OccFetched = %d but store saw %d GETs", stats.OccFetched, batchGets)
	}
}

// FuzzFMSuperwalk drives CountMany/LookupManyBounded with random
// pattern batches against the single-pattern walk as oracle: the
// coordinated walk must never change any pattern's result.
func FuzzFMSuperwalk(f *testing.F) {
	f.Add([]byte("the quick brown fox"), []byte("fox\x01quick\x01zzz\x01e"), 4)
	f.Add([]byte("aaaaaaaaaaaaaaaa"), []byte("aa\x01aaa\x01a"), 0)
	f.Add([]byte("abcabcabc"), []byte("\x01"), 1)
	f.Fuzz(func(t *testing.T, textRaw, patternsRaw []byte, maxRows int) {
		if len(textRaw) > 4<<10 || len(patternsRaw) > 256 {
			t.Skip()
		}
		text := make([]byte, 0, len(textRaw))
		for _, b := range textRaw {
			if b == Sentinel {
				b = Separator
			}
			text = append(text, b)
		}
		patterns := bytes.Split(patternsRaw, []byte{Separator})
		if len(patterns) > 16 {
			patterns = patterns[:16]
		}
		for i, p := range patterns {
			// Sentinel-containing patterns error on both paths; route
			// them away so the fuzz focuses on result equivalence.
			patterns[i] = bytes.ReplaceAll(p, []byte{Sentinel}, []byte{Separator})
		}
		if maxRows < 0 {
			maxRows = -maxRows
		}
		maxRows %= 64

		ctx := context.Background()
		store := objectstore.NewMemStore(nil)
		rng := rand.New(rand.NewSource(int64(len(textRaw))))
		// Random small geometry stresses block-boundary paths.
		var docs []string
		for len(text) > 0 {
			n := 1 + rng.Intn(64)
			if n > len(text) {
				n = len(text)
			}
			docs = append(docs, string(text[:n]))
			text = text[n:]
		}
		if len(docs) == 0 {
			docs = []string{"x"}
		}
		ix, _, _ := buildTestIndex(t, store, "fuzz.index", docs, 1+rng.Intn(4), BuildOptions{
			BlockSize: 32 + rng.Intn(256), PageMapBlock: 32 + rng.Intn(256),
		})

		counts, _, err := ix.CountMany(ctx, patterns)
		if err != nil {
			t.Fatalf("CountMany: %v", err)
		}
		bounds := make([]int, len(patterns))
		for i := range bounds {
			bounds[i] = maxRows
		}
		refs, trunc, _, err := ix.LookupManyBounded(ctx, patterns, bounds)
		if err != nil {
			t.Fatalf("LookupManyBounded: %v", err)
		}
		for i, p := range patterns {
			wantCount, err := ix.Count(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if counts[i] != wantCount {
				t.Fatalf("pattern %q: CountMany=%d Count=%d", p, counts[i], wantCount)
			}
			wantRefs, wantTrunc, err := ix.LookupBounded(ctx, p, maxRows)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refs[i], wantRefs) || trunc[i] != wantTrunc {
				t.Fatalf("pattern %q maxRows=%d: superwalk %v/%v, singleton %v/%v",
					p, maxRows, refs[i], trunc[i], wantRefs, wantTrunc)
			}
		}
	})
}
