package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
)

// sentinelize strips sentinel bytes from b (rewriting them to 0x01)
// and appends the unique smallest sentinel, producing a valid
// suffix-array input from arbitrary bytes.
func sentinelize(b []byte) []byte {
	text := make([]byte, 0, len(b)+1)
	for _, c := range b {
		if c == 0 {
			c = 1
		}
		text = append(text, c)
	}
	return append(text, 0)
}

func checkSAISAgainstReference(t *testing.T, label string, text []byte) {
	t.Helper()
	got := buildSuffixArray(text)
	want := ReferenceSuffixArray(text)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s (n=%d): sa[%d] = %d, reference %d", label, len(text), i, got[i], want[i])
		}
	}
}

// TestSAISMatchesReference differentially tests the linear-time SA-IS
// builder against the retained prefix-doubling oracle on random and
// degenerate inputs.
func TestSAISMatchesReference(t *testing.T) {
	// Degenerate shapes that stress the LMS machinery.
	allEqual := bytes.Repeat([]byte{'a'}, 4096)
	twoSym := make([]byte, 4097)
	for i := range twoSym {
		twoSym[i] = byte('a' + i%2)
	}
	longRepeat := bytes.Repeat([]byte("abcabcab"), 700)
	cases := map[string][]byte{
		"all-equal":       allEqual,
		"two-symbol":      twoSym,
		"long-repeat":     longRepeat,
		"single":          {},
		"one-char":        {'x'},
		"descending":      {'e', 'd', 'c', 'b', 'a'},
		"ascending":       {'a', 'b', 'c', 'd', 'e'},
		"banana":          []byte("banana"),
		"mississippi":     []byte("mississippi"),
		"lms-at-ends":     []byte("cabcabca"),
		"repeat-plus-one": append(bytes.Repeat([]byte("ab"), 100), 'a'),
	}
	for label, body := range cases {
		checkSAISAgainstReference(t, label, sentinelize(body))
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(3000)
		sigma := 2 + rng.Intn(254)
		body := make([]byte, n)
		for j := range body {
			body[j] = byte(1 + rng.Intn(sigma))
		}
		checkSAISAgainstReference(t, "random", sentinelize(body))
	}
}

// FuzzSuffixArray fuzzes SA-IS against the prefix-doubling oracle on
// arbitrary byte strings.
func FuzzSuffixArray(f *testing.F) {
	f.Add([]byte("banana"))
	f.Add([]byte("mississippi"))
	f.Add(bytes.Repeat([]byte{'a'}, 64))
	f.Add([]byte("abababababababa"))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		text := sentinelize(data)
		got := buildSuffixArray(text)
		want := ReferenceSuffixArray(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sa[%d] = %d, reference %d (n=%d)", i, got[i], want[i], len(text))
			}
		}
	})
}
