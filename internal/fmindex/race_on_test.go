//go:build race

package fmindex

// raceEnabled reports whether the race detector is compiled in. The
// build-speed shape tests skip under it: race instrumentation slows
// the two builders by different factors, so speedup ratios measured
// under it are meaningless.
const raceEnabled = true
