package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("store.gets")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("store.gets") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("cache.bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
	// nil receivers must be inert, not panic.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	var nr *Registry
	nr.Counter("x").Inc()
	if nr.Snapshot().Counter("x") != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 1, 3, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1005 || s.Min != 0 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// 0 → bucket bound 1; 1,1 → bound 2 (bit length 1... wait 1 has
	// bit length 1 → bucket 1 → bound 2); 3 → bound 4; 1000 → bound 1024.
	if s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[4] != 1 || s.Buckets[1024] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if got := s.Mean(); got != 201 {
		t.Fatalf("mean = %v, want 201", got)
	}
}

func TestSnapshotSubAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(8)
	before := r.Snapshot()
	r.Counter("a").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(8)
	delta := r.Snapshot().Sub(before)
	if delta.Counter("a") != 7 {
		t.Fatalf("counter delta = %d, want 7", delta.Counter("a"))
	}
	if delta.Gauge("g") != 9 {
		t.Fatalf("gauge after sub = %d, want 9 (latest value)", delta.Gauge("g"))
	}
	if h := delta.Histograms["h"]; h.Count != 1 || h.Sum != 8 {
		t.Fatalf("histogram delta = %+v", h)
	}

	other := NewRegistry()
	other.Counter("b").Add(3)
	merged := Merge(r.Snapshot(), other.Snapshot())
	if merged.Counter("a") != 17 || merged.Counter("b") != 3 {
		t.Fatalf("merged counters = %v", merged.Counters)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("store.gets").Add(12)
	r.Gauge("cache.bytes").Set(64)
	r.Histogram("search.latency_ns").Observe(100)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE store_gets_total counter",
		"store_gets_total 12",
		"# TYPE cache_bytes gauge",
		"cache_bytes 64",
		"# TYPE search_latency_ns histogram",
		"search_latency_ns_bucket{le=\"128\"} 1",
		"search_latency_ns_bucket{le=\"+Inf\"} 1",
		"search_latency_ns_sum 100",
		"search_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent exercises get-or-create and updates from many
// goroutines; run under -race via make check.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("shared") != 8000 {
		t.Fatalf("shared counter = %d, want 8000", s.Counter("shared"))
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestStartWithoutTraceIsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "anything")
	if span != nil {
		t.Fatal("Start without a trace returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a trace derived a new context")
	}
	// All methods on the nil span must be inert.
	span.SetAttr("k", "v")
	span.End()
	if span.Tree() != nil {
		t.Fatal("nil span has a tree")
	}
}

// TestSpanVirtualDurations proves span virtual time is driven by the
// session in the span's context: phases that Charge the session get
// exactly that much virtual time, and sibling phases sum to the
// session's total elapsed.
func TestSpanVirtualDurations(t *testing.T) {
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	ctx, root := WithTrace(ctx, "op")

	pctx, plan := Start(ctx, "op.plan")
	simtime.Charge(pctx, 30*time.Millisecond)
	plan.End()

	rctx, read := Start(ctx, "op.read")
	simtime.Charge(rctx, 70*time.Millisecond)
	read.SetAttr("bytes", 1024)
	read.End()

	root.End()
	tree := root.Tree()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tree.Find("op.plan").Virtual; got != 30*time.Millisecond {
		t.Fatalf("plan virtual = %v, want 30ms", got)
	}
	if got := tree.Find("op.read").Virtual; got != 70*time.Millisecond {
		t.Fatalf("read virtual = %v, want 70ms", got)
	}
	if tree.Virtual != sess.Elapsed() || tree.Virtual != 100*time.Millisecond {
		t.Fatalf("root virtual = %v, session = %v, want 100ms", tree.Virtual, sess.Elapsed())
	}
	if sum := tree.Children[0].Virtual + tree.Children[1].Virtual; sum != tree.Virtual {
		t.Fatalf("phase sum %v != root %v", sum, tree.Virtual)
	}
	if got := tree.Find("op.read").Attrs["bytes"]; got != 1024 {
		t.Fatalf("attr bytes = %v", got)
	}
}

// TestSpanParallelBranches mirrors the protocol's fan-out: children
// opened on parallel branch sessions measure their own branch's
// virtual time, while the parent measures the merged maximum.
func TestSpanParallelBranches(t *testing.T) {
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	ctx, root := WithTrace(ctx, "fan")

	durations := []time.Duration{10 * time.Millisecond, 40 * time.Millisecond}
	branches := make([]func(*simtime.Session), len(durations))
	for i, d := range durations {
		d := d
		branches[i] = func(branch *simtime.Session) {
			bctx := simtime.With(ctx, branch)
			bctx, span := Start(bctx, "fan.branch")
			simtime.Charge(bctx, d)
			span.End()
		}
	}
	sess.Parallel(branches...)

	root.End()
	tree := root.Tree()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(tree.Children))
	}
	seen := map[time.Duration]bool{}
	for _, c := range tree.Children {
		seen[c.Virtual] = true
	}
	if !seen[10*time.Millisecond] || !seen[40*time.Millisecond] {
		t.Fatalf("branch virtuals = %v", tree.Children)
	}
	if tree.Virtual != 40*time.Millisecond {
		t.Fatalf("root virtual = %v, want 40ms (parallel max)", tree.Virtual)
	}
}

func TestEndIdempotentAndValidate(t *testing.T) {
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	ctx, root := WithTrace(ctx, "op")
	_, child := Start(ctx, "op.phase")
	child.End()
	simtime.Charge(ctx, time.Second) // after End: must not leak into the span
	child.End()
	root.End()
	tree := root.Tree()
	if got := tree.Children[0].Virtual; got != 0 {
		t.Fatalf("re-End extended the span: virtual = %v", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}

	// An unfinished child must fail validation.
	_, root2 := WithTrace(context.Background(), "op2")
	Start(context.WithValue(context.Background(), ctxKey{}, root2), "dangling")
	root2.End()
	if err := root2.Tree().Validate(); err == nil {
		t.Fatal("Validate accepted an unfinished child")
	}
}

func TestRenderTextAndJSON(t *testing.T) {
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	ctx, root := WithTrace(ctx, "search")
	pctx, plan := Start(ctx, "search.plan")
	simtime.Charge(pctx, 30*time.Millisecond)
	plan.SetAttr("files", 3)
	plan.End()
	root.End()

	var sb strings.Builder
	if err := RenderText(&sb, root.Tree()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "search.plan") || !strings.Contains(out, "files=3") || !strings.Contains(out, "virtual=30ms") {
		t.Fatalf("render output:\n%s", out)
	}

	data, err := root.Tree().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "search" || len(back.Children) != 1 || back.Children[0].Virtual != 30*time.Millisecond {
		t.Fatalf("roundtrip = %+v", back)
	}
}
