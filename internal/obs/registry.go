// Package obs is Rottnest's zero-dependency observability layer:
// context-propagated trace spans recording wall and virtual (simtime)
// durations, and a typed metrics registry of named counters, gauges,
// and histograms.
//
// The paper's whole argument is economic (Section VII's TCO phase
// diagrams hinge on exact GET, byte, and latency accounting per
// protocol call), so instrumentation is not an afterthought here: the
// store wrappers, the four protocol APIs, and in-situ probing all
// report through this one layer. Everything is stdlib-only and cheap
// when disabled — a span Start against a context with no trace is a
// single context lookup, and registry counters are single atomics.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// nil-safe so holders of an optional counter need no guards.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored:
// counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (e.g. resident cache bytes).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations whose bit length is i, i.e. values in
// [2^(i-1), 2^i). Bucket 0 counts non-positive observations.
const histBuckets = 64

// Histogram accumulates int64 observations (typically nanoseconds)
// into power-of-two buckets plus count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps an upper bound (exclusive, a power of two) to the
	// number of observations below it and at or above the previous
	// bound. Empty buckets are omitted.
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// Mean returns the mean observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[int64]int64)
		}
		bound := int64(1)
		if i > 0 {
			bound = 1 << uint(i)
		}
		s.Buckets[bound] = n
	}
	return s
}

// Registry is a concurrency-safe set of named metrics. Metric names
// are dot-separated lowercase paths ("store.gets", "cache.hits",
// "search.latency_ns"); each wrapper owns a private registry with a
// disjoint prefix, and Client.Metrics merges them into one Snapshot.
// Lookups are get-or-create, so callers can resolve metric handles
// once at construction and update them lock-free afterwards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a point-in-time copy of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(counters))
		}
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64, len(gauges))
		}
		s.Gauges[k] = v.Value()
	}
	for k, v := range histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		}
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// Snapshot is a point-in-time view over one or more registries. The
// legacy per-wrapper snapshot structs (StoreMetrics Snapshot,
// CacheStats, RetryStats) are derived views over it.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Sub returns the counter and histogram deltas from an earlier
// snapshot (gauges keep their later value), for attributing metric
// movement to a single window.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := Snapshot{}
	for k, v := range s.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]int64, len(s.Counters))
		}
		out.Counters[k] = v - earlier.Counters[k]
	}
	for k, v := range s.Gauges {
		if out.Gauges == nil {
			out.Gauges = make(map[string]int64, len(s.Gauges))
		}
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		}
		e := earlier.Histograms[k]
		d := HistogramSnapshot{Count: v.Count - e.Count, Sum: v.Sum - e.Sum, Min: v.Min, Max: v.Max}
		for bound, n := range v.Buckets {
			if delta := n - e.Buckets[bound]; delta != 0 {
				if d.Buckets == nil {
					d.Buckets = make(map[int64]int64)
				}
				d.Buckets[bound] = delta
			}
		}
		out.Histograms[k] = d
	}
	return out
}

// Merge unions snapshots into one. Names are expected to be disjoint
// (each wrapper prefixes its own); on a clash counters sum,
// gauges/histograms keep the later entry.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{}
	for _, s := range snaps {
		for k, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]int64)
			}
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[k] = v
		}
	}
	return out
}

// promName converts a dotted metric name to a Prometheus-compatible
// one (dots and dashes become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '-':
			return '_'
		}
		return r
	}, name)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters get a _total suffix, histograms emit
// cumulative _bucket/_sum/_count series. Output is sorted by name so
// dumps diff cleanly.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", promName(k), promName(k), s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", promName(k), promName(k), s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bounds := make([]int64, 0, len(h.Buckets))
		for b := range h.Buckets {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		cum := int64(0)
		for _, b := range bounds {
			cum += h.Buckets[b]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n", name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
