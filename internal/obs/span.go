package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"rottnest/internal/simtime"
)

// Node is one finished (or abandoned) span in a trace tree. Wall is
// real elapsed time; Virtual is simulated object-store time — the
// delta of the span's simtime.Session between Start and End, so on a
// virtual clock sibling phase durations sum exactly to the session
// latency the protocol reports.
type Node struct {
	Name       string         `json:"name"`
	Wall       time.Duration  `json:"wall_ns"`
	Virtual    time.Duration  `json:"virtual_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Unfinished bool           `json:"unfinished,omitempty"`
	Children   []*Node        `json:"children,omitempty"`
}

// Find returns the first node named name in a depth-first walk, or
// nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every node named name in depth-first order.
func (n *Node) FindAll(name string) []*Node {
	var out []*Node
	if n == nil {
		return out
	}
	if n.Name == name {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// Validate checks structural well-formedness: every node has a name,
// was ended, and has non-negative durations. The chaos harness runs
// it on every traced search so malformed trees surface under faults.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("obs: nil trace node")
	}
	if n.Name == "" {
		return fmt.Errorf("obs: unnamed span")
	}
	if n.Unfinished {
		return fmt.Errorf("obs: span %q never ended", n.Name)
	}
	if n.Wall < 0 {
		return fmt.Errorf("obs: span %q has negative wall duration %v", n.Name, n.Wall)
	}
	if n.Virtual < 0 {
		return fmt.Errorf("obs: span %q has negative virtual duration %v", n.Name, n.Virtual)
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("under %q: %w", n.Name, err)
		}
	}
	return nil
}

// traceState is the per-tree shared state: one mutex guards every
// node in the tree, since parallel fan-out branches append children
// and set attributes concurrently.
type traceState struct {
	mu sync.Mutex
}

// Span is a live node in a trace tree. All methods are nil-safe: a
// Span obtained from Start against an untraced context is nil, making
// tracing near-free when disabled.
type Span struct {
	t            *traceState
	node         *Node
	session      *simtime.Session
	startWall    time.Time
	startVirtual time.Duration
	ended        bool
}

type ctxKey struct{}

// WithTrace starts a new trace rooted at a span called name and
// returns the derived context plus the root span. Unlike Start it
// always records, so it is the explicit opt-in: nothing is traced
// until a caller (Client.Trace, the harness, -trace tooling) plants a
// root.
func WithTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := newSpan(&traceState{}, ctx, name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start opens a child span under the current span in ctx. When ctx
// carries no trace it returns (ctx, nil) at the cost of one context
// lookup; every Span method tolerates the nil.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := newSpan(parent.t, ctx, name)
	parent.t.mu.Lock()
	parent.node.Children = append(parent.node.Children, s.node)
	parent.t.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, s), s
}

// newSpan captures the session from ctx at open time: branch contexts
// carry their own parallel sessions, so a span measures virtual time
// on whichever session its phase actually charges.
func newSpan(t *traceState, ctx context.Context, name string) *Span {
	sess := simtime.From(ctx)
	return &Span{
		t:            t,
		node:         &Node{Name: name, Unfinished: true},
		session:      sess,
		startWall:    time.Now(),
		startVirtual: sess.Elapsed(),
	}
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.node.Attrs == nil {
		s.node.Attrs = make(map[string]any)
	}
	s.node.Attrs[key] = value
	s.t.mu.Unlock()
}

// End closes the span, fixing its wall and virtual durations. End is
// idempotent: protocol code ends phase spans eagerly before error
// checks and again via defer without double counting.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.node.Unfinished = false
		s.node.Wall = time.Since(s.startWall)
		s.node.Virtual = s.session.Elapsed() - s.startVirtual
	}
	s.t.mu.Unlock()
}

// Tree returns the span's subtree as a Node. Call it on the root
// after End to extract the finished trace.
func (s *Span) Tree() *Node {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.node
}

// RenderText writes an indented, human-readable rendering of the
// tree — the "EXPLAIN ANALYZE" view. Attributes print sorted.
func RenderText(w io.Writer, n *Node) error {
	return renderText(w, n, 0)
}

func renderText(w io.Writer, n *Node, depth int) error {
	if n == nil {
		return nil
	}
	var attrs string
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, n.Attrs[k])
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	suffix := ""
	if n.Unfinished {
		suffix = "  [unfinished]"
	}
	if _, err := fmt.Fprintf(w, "%s%s  virtual=%v wall=%v%s%s\n",
		strings.Repeat("  ", depth), n.Name, n.Virtual, n.Wall.Round(time.Microsecond), attrs, suffix); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := renderText(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONIndent renders the tree as indented JSON (the -trace
// file format).
func (n *Node) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(n, "", "  ")
}
