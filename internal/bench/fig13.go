package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
)

// Fig13Point is one dataset size of the compaction experiment.
type Fig13Point struct {
	// Batches is the number of appended (and separately indexed)
	// batches at this size.
	Batches int
	// IndexFilesBefore is the uncompacted index file count.
	IndexFilesBefore int
	// Uncompacted and Compacted are mean search latencies.
	Uncompacted, Compacted time.Duration
}

// Fig13Result holds the Figure 13 series for both applications.
type Fig13Result struct {
	Substring []Fig13Point
	UUID      []Fig13Point
}

// Fig13Compaction reproduces Figure 13: search latency on
// uncompacted versus compacted indices as the dataset grows. Each
// ingest batch is indexed separately (the lazy protocol's natural
// state), so the uncompacted index file count grows with data volume
// and — because one searcher can only fan so wide — search latency
// grows with it. After compact+vacuum the latency is roughly flat in
// dataset size.
func Fig13Compaction(opts Options) (*Fig13Result, error) {
	ctx := context.Background()
	out := opts.out()
	res := &Fig13Result{}

	sizes := []int{32, 128, 384}
	if opts.Quick {
		sizes = []int{16, 64, 160}
	}

	fmt.Fprintln(out, "# Fig 13: search latency, uncompacted vs compacted indices")
	for _, app := range []string{"substring", "uuid"} {
		fmt.Fprintf(out, "%-12s %-10s %-12s %-14s %-14s\n", app, "batches", "index files", "uncompacted", "compacted")
		for _, batches := range sizes {
			var point Fig13Point
			point.Batches = batches
			switch app {
			case "substring":
				tw, err := newTextWorld(opts.Seed+6, batches, opts.scaleInt(400, 150), core.Config{})
				if err != nil {
					return nil, err
				}
				// Index each batch separately: the snapshot grows one
				// file per version, so index after every append is
				// simulated by indexing file-by-file via repeated calls
				// with a metadata check in between. Calling Index once
				// would cover all files with one index file, so instead
				// replay ingestion one file at a time.
				if err := indexPerFile(ctx, tw.world, "body", component.KindFM); err != nil {
					return nil, err
				}
				entries, err := tw.client.Meta().ListFor(ctx, "body", component.KindFM)
				if err != nil {
					return nil, err
				}
				point.IndexFilesBefore = len(entries)
				queries := tw.queries(3)
				tw.traced(opts.Trace, "fig13.text")
				lat, err := tw.searchLatency(ctx, queries)
				if err != nil {
					return nil, err
				}
				point.Uncompacted = lat
				if _, err := tw.client.Compact(ctx, "body", component.KindFM, core.CompactOptions{}); err != nil {
					return nil, err
				}
				if _, err := tw.client.Vacuum(ctx, core.VacuumOptions{}); err != nil {
					return nil, err
				}
				if point.Compacted, err = tw.searchLatency(ctx, queries); err != nil {
					return nil, err
				}
				res.Substring = append(res.Substring, point)
			case "uuid":
				uw, err := newUUIDWorld(opts.Seed+7, batches, opts.scaleInt(4000, 1500), core.Config{})
				if err != nil {
					return nil, err
				}
				if err := indexPerFile(ctx, uw.world, "id", component.KindTrie); err != nil {
					return nil, err
				}
				entries, err := uw.client.Meta().ListFor(ctx, "id", component.KindTrie)
				if err != nil {
					return nil, err
				}
				point.IndexFilesBefore = len(entries)
				queries := uw.queries(4)
				uw.traced(opts.Trace, "fig13.uuid")
				lat, err := uw.searchLatency(ctx, queries)
				if err != nil {
					return nil, err
				}
				point.Uncompacted = lat
				if _, err := uw.client.Compact(ctx, "id", component.KindTrie, core.CompactOptions{}); err != nil {
					return nil, err
				}
				if _, err := uw.client.Vacuum(ctx, core.VacuumOptions{}); err != nil {
					return nil, err
				}
				if point.Compacted, err = uw.searchLatency(ctx, queries); err != nil {
					return nil, err
				}
				res.UUID = append(res.UUID, point)
			}
			fmt.Fprintf(out, "%-12s %-10d %-12d %-14s %-14s\n", "",
				point.Batches, point.IndexFilesBefore,
				point.Uncompacted.Round(time.Millisecond), point.Compacted.Round(time.Millisecond))
		}
	}
	return res, nil
}

// indexPerFile builds one index file per data file, reproducing the
// state of an indexer that ran after every ingest batch.
func indexPerFile(ctx context.Context, w *world, column string, kind component.Kind) error {
	snap, err := w.table.Snapshot(ctx)
	if err != nil {
		return err
	}
	// Index files one at a time by temporarily narrowing the
	// snapshot view: simplest faithful approach is to call Index
	// against successive snapshot versions (each append is one
	// version).
	for v := int64(2); v <= snap.Version; v++ {
		if _, err := w.client.IndexAt(ctx, column, kind, v); err != nil {
			return err
		}
	}
	return nil
}
