package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/tco"
)

// bfSecondsAtScale models a W-worker brute-force scan of the given
// data volume, mirroring the bruteforce package's cluster model
// (throughput-bound work plus spin-up plus straggler skew). The TCO
// harness uses it to extrapolate cpq_bf to paper-scale datasets,
// where scan time is throughput-bound, rather than scaling up the
// per-file overheads that dominate at laptop scale.
func bfSecondsAtScale(bytes float64, workers int) float64 {
	spin := 2.0 + 0.06*float64(workers)
	return bytes/(float64(workers)*200e6)*1.15 + spin
}

// AppMeasurement is everything measured for one application before
// TCO derivation.
type AppMeasurement struct {
	Name string
	// Measured at laptop scale.
	RawBytes       int64
	IndexBytes     int64
	IndexBuildTime time.Duration
	QueryLatency   time.Duration
	// PaperBytes is the paper-scale dataset volume extrapolated to.
	PaperBytes float64
	// Params are the derived TCO parameters at paper scale.
	Params tco.Params
}

// derive converts laptop-scale measurements into paper-scale TCO
// parameters (Section VII-D2 scale bridging: byte-derived parameters
// scale linearly; post-compaction query latency does not).
func derive(name string, rawBytes, indexBytes int64, buildTime, queryLatency time.Duration, paperBytes float64) AppMeasurement {
	indexRatio := float64(indexBytes) / float64(rawBytes)
	buildThroughput := float64(rawBytes) / buildTime.Seconds() // bytes/sec, one worker
	m := tco.Measurement{
		Pricing:                tco.DefaultPricing(),
		RawBytes:               int64(paperBytes),
		IndexBytes:             int64(paperBytes * indexRatio),
		CopyBytes:              int64(paperBytes * 1.1), // data + dedicated index
		IndexSeconds:           paperBytes / buildThroughput,
		RottnestQuerySeconds:   queryLatency.Seconds(),
		BruteForceWorkers:      8,
		BruteForceQuerySeconds: bfSecondsAtScale(paperBytes, 8),
		DedicatedReplicas:      3,
		ScaleFactor:            1,
	}
	return AppMeasurement{
		Name:           name,
		RawBytes:       rawBytes,
		IndexBytes:     indexBytes,
		IndexBuildTime: buildTime,
		QueryLatency:   queryLatency,
		PaperBytes:     paperBytes,
		Params:         m.Params(),
	}
}

// measureUUIDApp builds, indexes, compacts, and measures the UUID
// application.
func measureUUIDApp(opts Options) (*AppMeasurement, error) {
	ctx := context.Background()
	uw, err := newUUIDWorld(opts.Seed, opts.scaleInt(24, 8), opts.scaleInt(50000, 20000), core.Config{})
	if err != nil {
		return nil, err
	}
	buildTime, err := uw.indexAndCompact(ctx, "id", component.KindTrie)
	if err != nil {
		return nil, err
	}
	raw, err := uw.rawBytes(ctx)
	if err != nil {
		return nil, err
	}
	index, err := uw.indexBytes(ctx)
	if err != nil {
		return nil, err
	}
	uw.traced(opts.Trace, "fig7.uuid")
	lat, err := uw.searchLatency(ctx, uw.queries(opts.scaleInt(10, 4)))
	if err != nil {
		return nil, err
	}
	m := derive("uuid", raw, index, buildTime, lat, PaperUUIDBytes)
	return &m, nil
}

// measureTextApp builds, indexes, compacts, and measures the
// substring application.
func measureTextApp(opts Options) (*AppMeasurement, error) {
	ctx := context.Background()
	tw, err := newTextWorld(opts.Seed+1, opts.scaleInt(24, 8), opts.scaleInt(2000, 600), core.Config{})
	if err != nil {
		return nil, err
	}
	buildTime, err := tw.indexAndCompact(ctx, "body", component.KindFM)
	if err != nil {
		return nil, err
	}
	raw, err := tw.rawBytes(ctx)
	if err != nil {
		return nil, err
	}
	index, err := tw.indexBytes(ctx)
	if err != nil {
		return nil, err
	}
	tw.traced(opts.Trace, "fig7.text")
	lat, err := tw.searchLatency(ctx, tw.queries(opts.scaleInt(8, 3)))
	if err != nil {
		return nil, err
	}
	m := derive("substring", raw, index, buildTime, lat, PaperTextBytes)
	return &m, nil
}

// Fig7Result holds the phase diagrams of Figure 7.
type Fig7Result struct {
	Substring, UUID *AppMeasurement
	// Windows at 10 months (paper: substring ~8e2..4e6, uuid
	// ~3e2..1e7).
	SubstringLo, SubstringHi float64
	UUIDLo, UUIDHi           float64
	// Break-even operating times at 100 queries/day (paper: ~2 days
	// substring, ~1 day uuid).
	SubstringBreakEvenDays, UUIDBreakEvenDays float64
}

// Fig7PhaseDiagrams reproduces Figure 7: TCO phase diagrams for
// substring and UUID search. The expected shapes: Rottnest's winning
// region spans about four orders of magnitude of query volume at 10
// months; the substring boundary against brute force curves upward
// (FM indices rival the compressed data in size) while the UUID
// boundary stays flat (tries are tiny).
func Fig7PhaseDiagrams(opts Options) (*Fig7Result, error) {
	out := opts.out()
	sub, err := measureTextApp(opts)
	if err != nil {
		return nil, err
	}
	uid, err := measureUUIDApp(opts)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Substring: sub, UUID: uid}

	for _, app := range []*AppMeasurement{sub, uid} {
		fmt.Fprintf(out, "# Fig 7: %s search\n", app.Name)
		fmt.Fprintf(out, "measured: raw %.1fMB, index %.1fMB (%.0f%% of raw), build %v, query %v\n",
			float64(app.RawBytes)/1e6, float64(app.IndexBytes)/1e6,
			100*float64(app.IndexBytes)/float64(app.RawBytes),
			app.IndexBuildTime.Round(time.Millisecond), app.QueryLatency.Round(time.Millisecond))
		p := app.Params
		fmt.Fprintf(out, "params @ paper scale: cpm_i=%.0f cpm_bf=%.2f cpq_bf=%.3f ic_r=%.0f cpm_r=%.2f cpq_r=%.6f\n",
			p.CPMCopyData, p.CPMBruteForce, p.CPQBruteForce, p.ICRottnest, p.CPMRottnest, p.CPQRottnest)
		d := tco.ComputeDiagram(p, 0.25, 100, 1, 1e10, 44)
		fmt.Fprint(out, d.Render())
		lo, hi, ok := p.RottnestWindow(10)
		if !ok {
			return nil, fmt.Errorf("bench: %s: rottnest never wins", app.Name)
		}
		fmt.Fprintf(out, "rottnest window at 10 months: %.1e .. %.1e queries (%.1f orders of magnitude)\n",
			lo, hi, math.Log10(hi/lo))
		be, _ := p.BreakEvenMonths(3000)
		fmt.Fprintf(out, "break-even at 100 queries/day: %.1f days\n\n", be*30)
		switch app.Name {
		case "substring":
			res.SubstringLo, res.SubstringHi = lo, hi
			res.SubstringBreakEvenDays = be * 30
		case "uuid":
			res.UUIDLo, res.UUIDHi = lo, hi
			res.UUIDBreakEvenDays = be * 30
		}
	}

	// The boundary-curvature observation: the substring boundary
	// against brute force (index ~ raw size) rises with months,
	// while the UUID boundary (tiny index) stays nearly flat.
	subLo5, _, okS5 := sub.Params.RottnestWindow(5)
	subLo50, _, okS50 := sub.Params.RottnestWindow(50)
	uidLo5, _, okU5 := uid.Params.RottnestWindow(5)
	uidLo50, _, okU50 := uid.Params.RottnestWindow(50)
	if okS5 && okS50 && okU5 && okU50 {
		fmt.Fprintf(out, "brute-force boundary growth 5->50 months: substring %.2fx, uuid %.2fx\n",
			subLo50/subLo5, uidLo50/uidLo5)
	}
	return res, nil
}
