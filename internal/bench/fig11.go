package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/tco"
)

// Fig11Result holds the in-situ ablation of Figure 11.
type Fig11Result struct {
	// Baseline is the real Rottnest design (in-situ + optimized
	// reader).
	Baseline AppMeasurement
	// WithCopy stores a copy of the data inside the index
	// (cpm_r grows by the raw size).
	WithCopy tco.Params
	// UnoptimizedReader probes with whole-column-chunk reads instead
	// of page reads (cpq_r grows with chunk transfer time).
	UnoptimizedReader tco.Params
	// UnoptimizedQuerySeconds is the measured degraded latency.
	UnoptimizedQuerySeconds float64
	// Windows at 10 months for each variant.
	BaselineLo, BaselineHi float64
	CopyLo, CopyHi         float64
	UnoptLo, UnoptHi       float64
}

// Fig11InSitu reproduces Figure 11: what happens to the UUID phase
// diagram if Rottnest (a) keeps a copy of the data in its index —
// storage cost multiplies and the brute-force boundary closes in —
// or (b) probes with an unoptimized reader that fetches whole column
// chunks — query cost balloons and the copy-data boundary closes in.
func Fig11InSitu(opts Options) (*Fig11Result, error) {
	ctx := context.Background()
	out := opts.out()

	uw, err := newUUIDWorld(opts.Seed+5, opts.scaleInt(24, 8), opts.scaleInt(50000, 20000), core.Config{})
	if err != nil {
		return nil, err
	}
	buildTime, err := uw.indexAndCompact(ctx, "id", component.KindTrie)
	if err != nil {
		return nil, err
	}
	raw, err := uw.rawBytes(ctx)
	if err != nil {
		return nil, err
	}
	index, err := uw.indexBytes(ctx)
	if err != nil {
		return nil, err
	}
	uw.traced(opts.Trace, "fig11.insitu")
	lat, err := uw.searchLatency(ctx, uw.queries(opts.scaleInt(10, 4)))
	if err != nil {
		return nil, err
	}
	base := derive("uuid", raw, index, buildTime, lat, PaperUUIDBytes)

	// Variant (a): the index carries a copy of the raw data.
	withCopy := base.Params
	withCopy.CPMRottnest += base.Params.CPMBruteForce // + one more copy of the data

	// Variant (b): measure probing via whole-chunk reads. Run the
	// index probe as usual, but charge the in-situ step as a full
	// column-chunk transfer per touched file (what a stock Parquet
	// reader would do), using the real chunk extents.
	snap, err := uw.table.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	var unoptLat time.Duration
	queries := uw.queries(opts.scaleInt(10, 4))
	for _, q := range queries {
		session := simtime.NewSession()
		sctx := simtime.With(ctx, session)
		res, err := uw.client.Search(sctx, q)
		if err != nil {
			return nil, err
		}
		// Replace each probed page read with a chunk read: charge
		// the extra transfer of (chunk - page) for each match file.
		for _, m := range res.Matches {
			f, ok := snap.File(m.Path)
			if !ok {
				continue
			}
			meta, err := parquet.ReadFileMeta(sctx, uw.store, uw.table.Root()+f.Path)
			if err != nil {
				return nil, err
			}
			for _, chunk := range parquet.ChunkForColumn(meta, 0) {
				if _, err := uw.store.GetRange(sctx, uw.table.Root()+f.Path, chunk.Offset, chunk.Size); err != nil {
					return nil, err
				}
			}
		}
		unoptLat += session.Elapsed()
	}
	unoptLat /= time.Duration(len(queries))
	// At paper scale the chunk is ~100MB, not our laptop-scale chunk:
	// charge the throughput-bound transfer of a 100 MB chunk on top.
	paperChunk := objectChunkLatency(100 << 20)
	unopt := base.Params
	unopt.CPQRottnest = (unoptLat + paperChunk).Seconds() * tco.DefaultPricing().WorkerPerHour / 3600

	res := &Fig11Result{Baseline: base, WithCopy: withCopy, UnoptimizedReader: unopt,
		UnoptimizedQuerySeconds: (unoptLat + paperChunk).Seconds()}

	fmt.Fprintln(out, "# Fig 11: in-situ querying ablation (uuid search)")
	for _, v := range []struct {
		name string
		p    tco.Params
		lo   *float64
		hi   *float64
	}{
		{"rottnest (in-situ, optimized reader)", base.Params, &res.BaselineLo, &res.BaselineHi},
		{"with data copy in index", withCopy, &res.CopyLo, &res.CopyHi},
		{"with unoptimized chunk reader", unopt, &res.UnoptLo, &res.UnoptHi},
	} {
		lo, hi, ok := v.p.RottnestWindow(10)
		if !ok {
			fmt.Fprintf(out, "%-40s never wins at 10 months\n", v.name)
			continue
		}
		*v.lo, *v.hi = lo, hi
		fmt.Fprintf(out, "%-40s cpm_r=%.2f cpq_r=%.5f window %.1e..%.1e (%.1f OoM)\n",
			v.name, v.p.CPMRottnest, v.p.CPQRottnest, lo, hi, math.Log10(hi/lo))
	}
	return res, nil
}

// objectChunkLatency is the modelled transfer time of one large
// sequential read, matching the instrumented store's latency model.
func objectChunkLatency(size int64) time.Duration {
	return objectstore.DefaultS3Model().GetLatency(size)
}
