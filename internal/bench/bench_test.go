package bench

import (
	"math"
	"testing"
)

// The tests here assert the SHAPES the paper reports — who wins, by
// roughly what factor, where knees and crossovers fall — not absolute
// numbers (the substrate is a simulator).

// skipUnderRace skips an experiment shape test when the race detector
// is compiled in: latencies here mix virtual store time with real
// wall-clock CPU time, and race instrumentation inflates the latter
// 5-20x, breaking the thresholds (and the package timeout). The
// concurrency these experiments drive is race-covered by the focused
// tests in objectstore, core, and harness; `make check` reruns this
// package without -race so the shapes still gate.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("wall-clock-coupled shape thresholds are invalid under -race")
	}
}

func TestFig10Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig10ReadGranularity(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for conc, series := range res.Granularity {
		// Flat region: 4KB and 1MB cost the same.
		if series[4<<10] != series[1<<20] {
			t.Fatalf("conc %d: latency not flat below 1MB: %v vs %v", conc, series[4<<10], series[1<<20])
		}
		// Linear region: 64MB costs several times 4MB.
		ratio := float64(series[64<<20]) / float64(series[4<<20])
		if ratio < 3 {
			t.Fatalf("conc %d: 64MB/4MB latency ratio %.2f, want throughput-bound growth", conc, ratio)
		}
	}
	// Page read+decode within 2x of the raw byte range (paper:
	// "little difference").
	if float64(res.PageReadLatency) > 2*float64(res.RawRangeLatency) {
		t.Fatalf("page read %v vs raw range %v", res.PageReadLatency, res.RawRangeLatency)
	}
}

func TestFig8Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig8Scaling(Options{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Workers) - 1
	for _, app := range []string{"substring", "uuid", "vector"} {
		lat := res.BruteLatency[app]
		// Latency falls from 1 worker to 32.
		if lat[0] <= lat[last-1] {
			t.Fatalf("%s: brute latency did not fall: %v", app, lat)
		}
		// Knee: the last doubling gains < 1.7x.
		if g := float64(lat[last-1]) / float64(lat[last]); g > 1.7 {
			t.Fatalf("%s: no knee at 64 workers (gain %.2f)", app, g)
		}
		// Cost per query rises past the knee.
		cost := res.BruteCost[app]
		if cost[last] <= cost[last-1] {
			t.Fatalf("%s: cost did not rise past the knee: %v", app, cost)
		}
		// Rottnest: latency ~flat with searchers (within 30%), cost
		// grows superlinearly relative to latency gain.
		rlat := res.RottnestLatency[app]
		if f := float64(rlat[0]) / float64(rlat[len(rlat)-1]); f > 1.5 {
			t.Fatalf("%s: rottnest latency improved %0.2fx with searchers; should be ~flat", app, f)
		}
		rcost := res.RottnestCost[app]
		if rcost[len(rcost)-1] < 3*rcost[0] {
			t.Fatalf("%s: rottnest cost not ~linear in searchers: %v", app, rcost)
		}
	}
}

func TestMinimumLatencyShape(t *testing.T) {
	skipUnderRace(t)
	res, err := MinimumLatency(Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for app, speedup := range res.Speedup {
		// Paper: Rottnest@1 beats brute@64 "by a large margin"
		// (4.3-5.4x at paper scale).
		if speedup < 2 {
			t.Fatalf("%s: speedup %.2f, want single-searcher Rottnest well ahead of 64-worker brute force", app, speedup)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig7PhaseDiagrams(Options{Seed: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Windows span >= 3 orders of magnitude at 10 months (paper: >4).
	if math.Log10(res.SubstringHi/res.SubstringLo) < 3 {
		t.Fatalf("substring window %.1e..%.1e too narrow", res.SubstringLo, res.SubstringHi)
	}
	if math.Log10(res.UUIDHi/res.UUIDLo) < 3 {
		t.Fatalf("uuid window %.1e..%.1e too narrow", res.UUIDLo, res.UUIDHi)
	}
	// The trie index is far smaller relative to raw than the FM
	// index (what flattens the uuid boundary).
	subRatio := float64(res.Substring.IndexBytes) / float64(res.Substring.RawBytes)
	uuidRatio := float64(res.UUID.IndexBytes) / float64(res.UUID.RawBytes)
	if uuidRatio >= subRatio {
		t.Fatalf("index/raw ratios: uuid %.2f vs substring %.2f", uuidRatio, subRatio)
	}
	// Break-even arrives within weeks at 100 queries/day (paper:
	// days).
	if res.SubstringBreakEvenDays > 60 || res.UUIDBreakEvenDays > 30 {
		t.Fatalf("break-evens: substring %.1f days, uuid %.1f days", res.SubstringBreakEvenDays, res.UUIDBreakEvenDays)
	}
}

func TestFig9Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig9VectorPhases(Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Reached < p.Target-0.03 {
			t.Fatalf("target %.2f only reached %.3f", p.Target, p.Reached)
		}
		if math.Log10(p.WindowHi/p.WindowLo) < 3 {
			t.Fatalf("target %.2f: window too narrow", p.Target)
		}
	}
	// Higher targets need more work (nprobe strictly nondecreasing
	// and strictly more at 0.97 than 0.87).
	if res.Points[2].NProbe <= res.Points[0].NProbe {
		t.Fatalf("nprobe did not rise with recall target: %d vs %d", res.Points[0].NProbe, res.Points[2].NProbe)
	}
	// The winning region barely moves across targets (paper's key
	// conclusion).
	if res.WindowShift > 0.5 {
		t.Fatalf("window shifted %.2f orders of magnitude across recall targets", res.WindowShift)
	}
}

func TestFig11Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig11InSitu(Options{Seed: 6, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Storing a data copy raises the brute-force boundary (Rottnest
	// loses low-query-volume territory).
	if res.CopyLo <= res.BaselineLo {
		t.Fatalf("data copy did not raise the brute-force boundary: %.1e vs %.1e", res.CopyLo, res.BaselineLo)
	}
	// The unoptimized reader lowers the copy-data boundary (Rottnest
	// loses high-query-volume territory).
	if res.UnoptHi >= res.BaselineHi {
		t.Fatalf("unoptimized reader did not lower the copy-data boundary: %.1e vs %.1e", res.UnoptHi, res.BaselineHi)
	}
}

func TestFig12Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig12Sensitivity(Options{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Factors)
	// Observation 1: scaling cpq_r down expands the top boundary;
	// the bottom boundary barely moves.
	if res.CPQWindows[0][1] <= res.CPQWindows[n-1][1] {
		t.Fatal("cheaper queries did not expand the copy-data boundary")
	}
	if r := res.CPQWindows[0][0] / res.CPQWindows[n-1][0]; r < 0.5 || r > 2 {
		t.Fatalf("cpq_r scaling moved the brute-force boundary %.2fx", r)
	}
	// Scaling cpm_r down expands the bottom boundary.
	if res.CPMWindows[0][0] >= res.CPMWindows[n-1][0] {
		t.Fatal("smaller index did not lower the brute-force boundary")
	}
	// Observation 2: break-even time scales with ic_r.
	for i := 1; i < n; i++ {
		if math.IsNaN(res.ICBreakEvens[i]) || math.IsNaN(res.ICBreakEvens[i-1]) {
			continue
		}
		if res.ICBreakEvens[i] <= res.ICBreakEvens[i-1] {
			t.Fatalf("break-even not increasing in ic_r: %v", res.ICBreakEvens)
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Fig13Compaction(Options{Seed: 8, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range [][]Fig13Point{res.Substring, res.UUID} {
		first, last := series[0], series[len(series)-1]
		// Uncompacted latency grows with dataset size.
		if last.Uncompacted <= first.Uncompacted {
			t.Fatalf("uncompacted latency did not grow: %v -> %v", first.Uncompacted, last.Uncompacted)
		}
		// Compacted latency grows far less than uncompacted.
		uncompGrowth := float64(last.Uncompacted) / float64(first.Uncompacted)
		compGrowth := float64(last.Compacted) / float64(first.Compacted)
		if compGrowth >= uncompGrowth {
			t.Fatalf("compaction did not flatten latency growth: %.2fx vs %.2fx", compGrowth, uncompGrowth)
		}
	}
	// At the largest size, compaction wins outright for UUID search.
	last := res.UUID[len(res.UUID)-1]
	if last.Compacted >= last.Uncompacted {
		t.Fatalf("uuid: compacted %v not faster than uncompacted %v at %d files",
			last.Compacted, last.Uncompacted, last.IndexFilesBefore)
	}
}

func TestCustomFormatShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := CustomFormatComparison(Options{Seed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Targets {
		ratio := float64(res.Rottnest[i]) / float64(res.Custom[i])
		// Paper: comparable latency (2.09 vs 1.90 etc). Allow 2x.
		if ratio > 2 {
			t.Fatalf("recall %.2f: rottnest %v vs custom %v (%.2fx)", res.Targets[i], res.Rottnest[i], res.Custom[i], ratio)
		}
		if ratio < 0.8 {
			t.Fatalf("recall %.2f: custom format should not be slower than in-situ", res.Targets[i])
		}
	}
}

func TestThroughputShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Throughput(Options{Seed: 10, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"uuid", "substring", "vector"} {
		if res.RequestsPerQuery[app] < 2 {
			t.Fatalf("%s: %d requests per query is implausibly low", app, res.RequestsPerQuery[app])
		}
		// The cap must be finite and far below the dedicated-system
		// regime but comfortably above interactive rates.
		if res.MaxQPS[app] < 10 || res.MaxQPS[app] > 5500 {
			t.Fatalf("%s: max QPS %.0f out of the plausible band", app, res.MaxQPS[app])
		}
	}
}

func TestAblationShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Ablations(Options{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Componentization beats downloading a multi-MB index per query.
	if res.ComponentizedLookup >= res.WholeFileLookup {
		t.Fatalf("componentized %v not faster than whole-file %v", res.ComponentizedLookup, res.WholeFileLookup)
	}
	// FM: larger blocks mean fewer dependent requests at this scale.
	if res.FMBlockLatency[16<<10] <= res.FMBlockLatency[1<<20] {
		t.Fatalf("fm block sweep inverted: %v vs %v", res.FMBlockLatency[16<<10], res.FMBlockLatency[1<<20])
	}
	// Trie: latency flat through the flat region, worse at 8MB leaves.
	if res.TrieComponentLatency[8<<20] <= res.TrieComponentLatency[128<<10] {
		t.Fatalf("oversized trie components should pay transfer time: %v vs %v",
			res.TrieComponentLatency[8<<20], res.TrieComponentLatency[128<<10])
	}
	// PQ: recall and size both rise with M.
	if !(res.PQRecall[4] < res.PQRecall[16]) || !(res.PQBytes[4] < res.PQBytes[16]) {
		t.Fatalf("PQ sweep not monotone: recall %v bytes %v", res.PQRecall, res.PQBytes)
	}
	// Pages: probes flat to 1MB targets, costlier at 16MB.
	if res.PageProbeLatency[300<<10] != res.PageProbeLatency[64<<10] {
		t.Fatalf("small-page probes should be identical: %v vs %v",
			res.PageProbeLatency[300<<10], res.PageProbeLatency[64<<10])
	}
	if res.PageProbeLatency[16<<20] <= res.PageProbeLatency[300<<10] {
		t.Fatal("oversized pages should pay transfer time")
	}
}

func TestDistributionSensitivityShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := DistributionSensitivity(Options{Seed: 12, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Lower entropy (higher skew) compresses the raw data better than
	// the index, raising the index/raw ratio...
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].IndexRatio <= res.Points[i-1].IndexRatio {
			t.Fatalf("index ratio not increasing with skew: %+v", res.Points)
		}
	}
	// ...which pushes the brute-force boundary up (Fig 12's cpm_r
	// effect driven by data, not a knob).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.WindowLo == 0 || last.WindowLo == 0 {
		t.Fatalf("boundary missing: %+v", res.Points)
	}
	if last.WindowLo <= first.WindowLo {
		t.Fatalf("boundary did not track the ratio: %.3g -> %.3g", first.WindowLo, last.WindowLo)
	}
}

func TestCacheWarmthShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := CacheWarmth(Options{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 3 {
		t.Fatalf("workloads = %d", len(res.Workloads))
	}
	for _, w := range res.Workloads {
		// The tentpole bars: repeated queries must get at least 2x
		// cheaper in virtual latency and 3x cheaper in GET requests
		// once the cache is warm.
		if w.Speedup < 2 {
			t.Fatalf("%s: warm speedup %.2fx < 2x (cold %v, warm %v)",
				w.Workload, w.Speedup, w.ColdLatency, w.WarmLatency)
		}
		if w.GETReduction < 3 {
			t.Fatalf("%s: GET reduction %.2fx < 3x (cold %d, warm %d)",
				w.Workload, w.GETReduction, w.ColdGETs, w.WarmGETs)
		}
		if w.Hits == 0 || w.BytesSaved == 0 {
			t.Fatalf("%s: warm pass recorded no cache hits: %+v", w.Workload, w)
		}
		// An uncached run must never report cache traffic.
		if w.ColdGETs == 0 {
			t.Fatalf("%s: cold pass issued no GETs", w.Workload)
		}
	}
}

func TestServeShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Serve(Options{Seed: 14, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 3 {
		t.Fatalf("workloads = %d", len(res.Workloads))
	}
	for _, w := range res.Workloads {
		// The tentpole bar: warm serving must at least halve the median
		// per-query latency versus the cold read path.
		if w.SpeedupP50 < 2 {
			t.Fatalf("%s: warm p50 speedup %.2fx < 2x (cold %v, warm %v)",
				w.Workload, w.SpeedupP50, w.ColdP50, w.WarmP50)
		}
		// Every query in the measured stream repeats the primed
		// universe, so the warm pass must issue zero GETs: no planning
		// LIST, no directory/manifest/header fetch, no page reads.
		if w.WarmGETsPerQuery != 0 {
			t.Fatalf("%s: warm pass issued %.2f GETs/query, want 0", w.Workload, w.WarmGETsPerQuery)
		}
		if w.ColdGETsPerQuery == 0 {
			t.Fatalf("%s: cold pass issued no GETs", w.Workload)
		}
		if w.DecodedHits == 0 || w.PlanHits == 0 {
			t.Fatalf("%s: warm pass recorded no cache activity: %+v", w.Workload, w)
		}
		if w.WarmQPS <= w.ColdQPS {
			t.Fatalf("%s: warm QPS %.1f not above cold %.1f", w.Workload, w.WarmQPS, w.ColdQPS)
		}
	}
}

func TestChaosShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Chaos(Options{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Total() == 0 {
		t.Fatal("storm injected no faults")
	}
	if res.Retries == 0 {
		t.Fatal("retry layer did no work under the storm")
	}
	// Recovery is not free: backoff waits and latency spikes charge
	// virtual time, so the storm pass cannot beat the clean pass.
	if res.StormLatency < res.CleanLatency {
		t.Fatalf("storm latency %v below clean %v", res.StormLatency, res.CleanLatency)
	}
}

func TestMultiShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Multi(Options{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	it := res.Intersect
	// The tentpole bar: a compound AND plan probes each index once and
	// fetches each surviving page once, so it must issue strictly fewer
	// GETs and read strictly fewer pages than its predicates run as
	// separate searches.
	if it.CompoundGETs >= it.SeparateGETs {
		t.Fatalf("compound plan issued %.1f GETs/query vs %.1f separate", it.CompoundGETs, it.SeparateGETs)
	}
	if it.CompoundPages >= it.SeparatePages {
		t.Fatalf("compound plan read %.1f pages/query vs %.1f separate", it.CompoundPages, it.SeparatePages)
	}
	// The intersection must actually prune: candidates above survivors.
	if it.PagesPruned <= 0 || it.PagesCandidate <= it.PagesPruned {
		t.Fatalf("intersection pruned nothing: candidate %.1f, pruned %.1f", it.PagesCandidate, it.PagesPruned)
	}
	bt := res.Batch
	// The batching bar: a Zipf stream of identical compound queries must
	// coalesce probes, executing at least 2x fewer index probes than the
	// independent baseline.
	if bt.ProbesCoalesced == 0 {
		t.Fatal("batched pass coalesced no probes")
	}
	if bt.ProbeSavings < 2 {
		t.Fatalf("probe savings %.2fx < 2x (batched %d runs, independent %d)",
			bt.ProbeSavings, bt.CoalescedProbeRuns, bt.IndependentProbeRuns)
	}
}

func TestShardedShapes(t *testing.T) {
	skipUnderRace(t)
	res, err := Sharded(Options{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaling) != 3 {
		t.Fatalf("scaling points = %d", len(res.Scaling))
	}
	one, four := res.Scaling[0], res.Scaling[len(res.Scaling)-1]
	// The scatter bar: aggregate QPS must grow with the shard count —
	// each worker probes only its file range's index entries, so its
	// wave-limited probe schedule shortens.
	if four.QPS <= one.QPS {
		t.Fatalf("QPS did not scale: %d shards %.2f vs 1 shard %.2f", four.Shards, four.QPS, one.QPS)
	}
	// The hedging bar: with one spiked replica, hedging must fire, win,
	// and claw back the tail versus the same deployment without it.
	if res.HedgeOn.Hedges == 0 || res.HedgeOn.HedgeWins == 0 {
		t.Fatalf("hedging never fired/won: %+v", res.HedgeOn)
	}
	if res.HedgeOff.Hedges != 0 {
		t.Fatalf("hedge-off pass hedged: %+v", res.HedgeOff)
	}
	if res.HedgeOn.P99 >= res.HedgeOff.P99 {
		t.Fatalf("hedging did not improve p99: on %v vs off %v", res.HedgeOn.P99, res.HedgeOff.P99)
	}
}
