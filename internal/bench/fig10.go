package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// Fig10Result holds the series of Figure 10.
type Fig10Result struct {
	// Granularity[conc][size] is the latency of one fan of conc
	// byte-range GETs of the given size (Fig 10a).
	Granularity map[int]map[int64]time.Duration
	// RawRangeLatency and PageReadLatency compare a 300 KB raw byte
	// range with a real data-page read-and-decode (Fig 10b).
	RawRangeLatency  time.Duration
	PageReadLatency  time.Duration
	PageDecodeReal   time.Duration
	PageSizeObserved int64
}

// Fig10ReadGranularity reproduces Figure 10: (a) S3 byte-range read
// latency is flat in read size until ~1 MB and then grows linearly,
// at every concurrency level; (b) reading and decoding real Parquet
// pages costs about the same as raw 300 KB byte ranges, so
// decompression overhead is not a concern.
func Fig10ReadGranularity(opts Options) (*Fig10Result, error) {
	ctx := context.Background()
	out := opts.out()
	clock := simtime.NewVirtualClock()
	model := objectstore.DefaultS3Model()
	store := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &model,
		CacheBytes: -1,
	}).Store

	// One big incompressible object to read ranges from.
	blob := make([]byte, 128<<20)
	rand.New(rand.NewSource(opts.Seed)).Read(blob[:1<<20])
	for off := 1 << 20; off < len(blob); off *= 2 {
		copy(blob[off:], blob[:off])
	}
	if err := store.Put(ctx, "blob", blob); err != nil {
		return nil, err
	}

	res := &Fig10Result{Granularity: make(map[int]map[int64]time.Duration)}
	sizes := []int64{4 << 10, 64 << 10, 300 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	concs := []int{1, 8, 64, 512}
	if opts.Quick {
		concs = []int{1, 64}
	}
	fmt.Fprintln(out, "# Fig 10a: byte-range GET latency vs read size (per concurrency)")
	fmt.Fprintf(out, "%-12s", "size")
	for _, c := range concs {
		fmt.Fprintf(out, "conc=%-9d", c)
	}
	fmt.Fprintln(out)
	for _, size := range sizes {
		fmt.Fprintf(out, "%-12s", byteSize(size))
		for _, conc := range concs {
			res.Granularity[conc] = ensure(res.Granularity[conc])
			// A fan's virtual latency is the max of its branches plus
			// the per-prefix RPS queueing delay. Requests execute
			// physically one at a time so 512 x 64MB buffers never
			// coexist; the virtual semantics are identical to FanGet.
			var maxBranch time.Duration
			for i := 0; i < conc; i++ {
				branch := simtime.NewSession()
				off := int64(i) * size % (int64(len(blob)) - size)
				if _, err := store.GetRange(simtime.With(ctx, branch), "blob", off, size); err != nil {
					return nil, err
				}
				if branch.Elapsed() > maxBranch {
					maxBranch = branch.Elapsed()
				}
			}
			total := maxBranch
			if model := objectstore.DefaultS3Model(); conc > 1 && model.MaxGetRPSPerPrefix > 0 {
				total += time.Duration(float64(conc) / model.MaxGetRPSPerPrefix * float64(time.Second))
			}
			res.Granularity[conc][size] = total
			fmt.Fprintf(out, "%-13s", total.Round(time.Millisecond))
		}
		fmt.Fprintln(out)
	}

	// (b) Raw 300KB ranges vs real page reads.
	docs := make([][]byte, 0, 4096)
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	for i := 0; i < 4096; i++ {
		doc := make([]byte, 250+rng.Intn(100))
		for j := range doc {
			doc[j] = byte('a' + rng.Intn(26))
		}
		docs = append(docs, doc)
	}
	batch := parquet.NewBatch(textSchema)
	batch.Cols[0] = parquet.ColumnValues{Bytes: docs}
	_, tables, err := parquet.WriteFile(ctx, store, "pages.rpq", batch, parquet.WriterOptions{PageBytes: 300 << 10})
	if err != nil {
		return nil, err
	}
	page := tables[0][0]
	res.PageSizeObserved = page.Size

	// Raw range of the page's physical size.
	session := simtime.NewSession()
	if _, err := store.GetRange(simtime.With(ctx, session), "pages.rpq", page.Offset, page.Size); err != nil {
		return nil, err
	}
	res.RawRangeLatency = session.Elapsed()

	// Real page read + decode; decode cost is real CPU time.
	session = simtime.NewSession()
	startReal := time.Now()
	if _, err := parquet.ReadPages(simtime.With(ctx, session), store, "pages.rpq", textSchema.Columns[0], tables[0][:1]); err != nil {
		return nil, err
	}
	res.PageDecodeReal = time.Since(startReal)
	res.PageReadLatency = session.Elapsed() + res.PageDecodeReal

	fmt.Fprintf(out, "\n# Fig 10b: raw %s range vs real page read+decode\n", byteSize(page.Size))
	fmt.Fprintf(out, "raw byte range:    %v\n", res.RawRangeLatency.Round(time.Microsecond))
	fmt.Fprintf(out, "page read+decode:  %v (decode %v)\n",
		res.PageReadLatency.Round(time.Microsecond), res.PageDecodeReal.Round(time.Microsecond))
	return res, nil
}

func ensure(m map[int64]time.Duration) map[int64]time.Duration {
	if m == nil {
		return make(map[int64]time.Duration)
	}
	return m
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
