package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
)

// Fig8Result holds the scaling series of Figure 8.
type Fig8Result struct {
	// Workers are the cluster sizes swept.
	Workers []int
	// BruteLatency[app][i] is brute-force latency at Workers[i];
	// BruteCost is worker-seconds per query. Apps: "substring",
	// "uuid", "vector".
	BruteLatency map[string][]time.Duration
	BruteCost    map[string][]float64
	// RottnestLatency/Cost are the same sweep for Rottnest searchers
	// (Fig 8c/8d): latency ~flat, cost ~linear.
	RottnestWorkers []int
	RottnestLatency map[string][]time.Duration
	RottnestCost    map[string][]float64
}

// Fig8Scaling reproduces Figure 8: brute force scales near-linearly
// to ~32 workers then hits a knee at 64 (latency gain evaporates,
// cost per query jumps), while Rottnest — depth-bound on object
// storage — barely improves with more searchers and its cost rises
// almost linearly.
func Fig8Scaling(opts Options) (*Fig8Result, error) {
	ctx := context.Background()
	out := opts.out()
	res := &Fig8Result{
		Workers:         []int{1, 2, 4, 8, 16, 32, 64},
		RottnestWorkers: []int{1, 2, 4, 8},
		BruteLatency:    map[string][]time.Duration{},
		BruteCost:       map[string][]float64{},
		RottnestLatency: map[string][]time.Duration{},
		RottnestCost:    map[string][]float64{},
	}
	if opts.Quick {
		res.Workers = []int{1, 8, 32, 64}
	}

	// Build the three application worlds.
	batches := opts.scaleInt(64, 16)
	uw, err := newUUIDWorld(opts.Seed, batches, opts.scaleInt(4000, 1000), core.Config{})
	if err != nil {
		return nil, err
	}
	tw, err := newTextWorld(opts.Seed+1, batches, opts.scaleInt(1200, 300), core.Config{})
	if err != nil {
		return nil, err
	}
	vw, err := newVectorWorld(opts.Seed+2, opts.scaleInt(40000, 8000), 32, 10, core.Config{})
	if err != nil {
		return nil, err
	}

	type app struct {
		name    string
		world   *world
		column  string
		kind    component.Kind
		pred    func([]byte) bool
		queries []core.Query
	}
	needle := []byte(tw.needles[0])
	key := uw.keys[123]
	qv := vw.queryVs[0]
	apps := []app{
		{"substring", tw.world, "body", component.KindFM,
			func(v []byte) bool { return bytes.Contains(v, needle) }, tw.queries(3)},
		{"uuid", uw.world, "id", component.KindTrie,
			func(v []byte) bool { return bytes.Equal(v, key[:]) }, uw.queries(3)},
		{"vector", vw.world, "emb", component.KindIVFPQ,
			func(v []byte) bool { return false },
			[]core.Query{{Column: "emb", Vector: qv, K: 10, NProbe: 16, Snapshot: -1}}},
	}

	// Brute-force sweep (Fig 8a/8b).
	fmt.Fprintln(out, "# Fig 8a/8b: brute force scaling (latency / worker-seconds per query)")
	for _, a := range apps {
		res.BruteLatency[a.name] = nil
		res.BruteCost[a.name] = nil
		for _, w := range res.Workers {
			lat, err := bruteForceLatency(ctx, a.world.table, w, a.column, a.pred)
			if err != nil {
				return nil, err
			}
			res.BruteLatency[a.name] = append(res.BruteLatency[a.name], lat)
			res.BruteCost[a.name] = append(res.BruteCost[a.name], lat.Seconds()*float64(w))
		}
	}
	fmt.Fprintf(out, "%-10s", "workers")
	for _, w := range res.Workers {
		fmt.Fprintf(out, "%-12d", w)
	}
	fmt.Fprintln(out)
	for _, a := range apps {
		fmt.Fprintf(out, "%-10s", a.name)
		for _, lat := range res.BruteLatency[a.name] {
			fmt.Fprintf(out, "%-12s", lat.Round(time.Millisecond))
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "%-10s", "  $ (ws)")
		for _, c := range res.BruteCost[a.name] {
			fmt.Fprintf(out, "%-12.1f", c)
		}
		fmt.Fprintln(out)
	}

	// Rottnest sweep (Fig 8c/8d): index everything, then model S
	// searchers by widening the per-query fan width S-fold — the
	// depth-bound chains do not shrink, so latency stays flat while
	// S instances burn cost.
	fmt.Fprintln(out, "\n# Fig 8c/8d: Rottnest scaling (latency / worker-seconds per query)")
	for _, a := range apps {
		if _, err := a.world.indexAndCompact(ctx, a.column, a.kind); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(out, "%-10s", "searchers")
	for _, w := range res.RottnestWorkers {
		fmt.Fprintf(out, "%-12d", w)
	}
	fmt.Fprintln(out)
	for _, a := range apps {
		for _, s := range res.RottnestWorkers {
			a.world.client = core.NewClient(a.world.table, core.Config{
				IndexDir: "rottnest", SearchWidth: 32 * s, Clock: a.world.clock,
			})
			lat, err := a.world.searchLatency(ctx, a.queries)
			if err != nil {
				return nil, err
			}
			res.RottnestLatency[a.name] = append(res.RottnestLatency[a.name], lat)
			res.RottnestCost[a.name] = append(res.RottnestCost[a.name], lat.Seconds()*float64(s))
		}
		fmt.Fprintf(out, "%-10s", a.name)
		for _, lat := range res.RottnestLatency[a.name] {
			fmt.Fprintf(out, "%-12s", lat.Round(time.Millisecond))
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "%-10s", "  $ (ws)")
		for _, c := range res.RottnestCost[a.name] {
			fmt.Fprintf(out, "%-12.2f", c)
		}
		fmt.Fprintln(out)
	}
	return res, nil
}

// MinimumLatencyResult holds the paper's Section VII-A numbers.
type MinimumLatencyResult struct {
	// Rottnest1 is single-searcher Rottnest latency per application.
	Rottnest1 map[string]time.Duration
	// Brute64 is 64-worker brute-force latency per application.
	Brute64 map[string]time.Duration
	// Speedup is Brute64/Rottnest1.
	Speedup map[string]float64
}

// MinimumLatency reproduces the minimum-latency-threshold comparison
// of Section VII-A: single-searcher Rottnest beats 64-worker brute
// force by a large factor on all three applications (the paper
// reports 4.3x/4.3x/5.4x with thresholds 4.6s/1.7s/2.3s).
func MinimumLatency(opts Options) (*MinimumLatencyResult, error) {
	out := opts.out()
	fig8, err := Fig8Scaling(Options{Seed: opts.Seed, Quick: opts.Quick})
	if err != nil {
		return nil, err
	}
	res := &MinimumLatencyResult{
		Rottnest1: map[string]time.Duration{},
		Brute64:   map[string]time.Duration{},
		Speedup:   map[string]float64{},
	}
	last := len(fig8.Workers) - 1
	fmt.Fprintln(out, "# Minimum latency thresholds (VII-A)")
	fmt.Fprintf(out, "%-10s %-14s %-14s %-8s\n", "app", "rottnest@1", "brute@64", "speedup")
	for _, app := range []string{"substring", "uuid", "vector"} {
		r1 := fig8.RottnestLatency[app][0]
		b64 := fig8.BruteLatency[app][last]
		res.Rottnest1[app] = r1
		res.Brute64[app] = b64
		res.Speedup[app] = float64(b64) / float64(r1)
		fmt.Fprintf(out, "%-10s %-14s %-14s %.1fx\n",
			app, r1.Round(time.Millisecond), b64.Round(time.Millisecond), res.Speedup[app])
	}
	return res, nil
}
