package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

// CacheWorkloadResult reports one workload's cold-vs-warm comparison:
// the same query set executed against an uncached deployment and
// against a cache-enabled deployment after one priming pass.
type CacheWorkloadResult struct {
	Workload string `json:"workload"`
	Queries  int    `json:"queries"`
	// ColdLatency and WarmLatency are mean virtual latencies per query.
	ColdLatency time.Duration `json:"cold_latency_ns"`
	WarmLatency time.Duration `json:"warm_latency_ns"`
	// ColdGETs and WarmGETs count object-store GET requests across the
	// measured pass.
	ColdGETs int64 `json:"cold_gets"`
	WarmGETs int64 `json:"warm_gets"`
	// Speedup is ColdLatency/WarmLatency; GETReduction is
	// ColdGETs/WarmGETs (capped at ColdGETs when WarmGETs is zero).
	Speedup      float64 `json:"speedup"`
	GETReduction float64 `json:"get_reduction"`
	// Cache counters over the measured warm pass.
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	BytesSaved int64 `json:"bytes_saved"`
}

// CacheWarmthResult aggregates the experiment across workloads.
type CacheWarmthResult struct {
	Workloads []CacheWorkloadResult `json:"workloads"`
}

// measurePass runs the query set once, returning total virtual
// latency and total GETs issued to the (instrumented) store.
func (w *world) measurePass(ctx context.Context, queries []core.Query) (time.Duration, int64, error) {
	before := w.metrics.Snapshot()
	var total time.Duration
	for _, q := range queries {
		session := simtime.NewSession()
		res, err := w.client.Search(simtime.With(ctx, session), q)
		if err != nil {
			return 0, 0, err
		}
		total += res.Stats.Latency
	}
	return total, w.metrics.Snapshot().Sub(before).Gets, nil
}

// cacheWorkload compares one workload cold vs warm. build constructs a
// deployment (data appended, index built and compacted) under the
// given client config and returns the repeated-query set to measure.
func cacheWorkload(ctx context.Context, name string, build func(cfg core.Config) (*world, []core.Query, error)) (CacheWorkloadResult, error) {
	r := CacheWorkloadResult{Workload: name}

	// Cold: the paper's read path — no cache, every GET pays Fig 10a.
	cold, queries, err := build(core.Config{CacheBytes: -1})
	if err != nil {
		return r, err
	}
	r.Queries = len(queries)
	coldLat, coldGets, err := cold.measurePass(ctx, queries)
	if err != nil {
		return r, err
	}

	// Warm: cache on, one priming pass, then measure the repeat.
	warm, queries, err := build(core.Config{CacheBytes: objectstore.DefaultCacheBytes})
	if err != nil {
		return r, err
	}
	if _, _, err := warm.measurePass(ctx, queries); err != nil {
		return r, err
	}
	primed := objectstore.CacheStatsFrom(warm.client.Metrics())
	warmLat, warmGets, err := warm.measurePass(ctx, queries)
	if err != nil {
		return r, err
	}
	delta := objectstore.CacheStatsFrom(warm.client.Metrics()).Sub(primed)

	n := time.Duration(len(queries))
	r.ColdLatency = coldLat / n
	r.WarmLatency = warmLat / n
	r.ColdGETs = coldGets
	r.WarmGETs = warmGets
	if warmLat > 0 {
		r.Speedup = float64(coldLat) / float64(warmLat)
	}
	if warmGets > 0 {
		r.GETReduction = float64(coldGets) / float64(warmGets)
	} else {
		r.GETReduction = float64(coldGets)
	}
	r.Hits = delta.Hits
	r.Misses = delta.Misses
	r.BytesSaved = delta.BytesSaved
	return r, nil
}

// CacheWarmth measures what the shared read cache buys repeated
// queries on each workload: per-query virtual latency and GET count,
// cold (no cache) versus warm (cache primed by one earlier pass of
// the same query set). Immutable objects — index tails and
// components, data pages, deletion vectors, log records — dominate
// the search read path, so the warm pass should collapse to cache
// hits, which charge zero virtual latency and issue zero GETs.
func CacheWarmth(o Options) (*CacheWarmthResult, error) {
	ctx := context.Background()
	out := o.out()
	res := &CacheWarmthResult{}

	uuid, err := cacheWorkload(ctx, "uuid", func(cfg core.Config) (*world, []core.Query, error) {
		uw, err := newUUIDWorld(o.Seed, o.scaleInt(8, 3), o.scaleInt(2000, 600), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := uw.indexAndCompact(ctx, "id", component.KindTrie); err != nil {
			return nil, nil, err
		}
		return uw.world, uw.queries(o.scaleInt(30, 10)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, uuid)

	text, err := cacheWorkload(ctx, "substring", func(cfg core.Config) (*world, []core.Query, error) {
		tw, err := newTextWorld(o.Seed, o.scaleInt(6, 3), o.scaleInt(400, 150), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := tw.indexAndCompact(ctx, "body", component.KindFM); err != nil {
			return nil, nil, err
		}
		return tw.world, tw.queries(o.scaleInt(24, 9)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, text)

	vector, err := cacheWorkload(ctx, "vector", func(cfg core.Config) (*world, []core.Query, error) {
		vw, err := newVectorWorld(o.Seed, o.scaleInt(6000, 2000), 16, o.scaleInt(12, 6), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := vw.indexAndCompact(ctx, "emb", component.KindIVFPQ); err != nil {
			return nil, nil, err
		}
		qs := make([]core.Query, len(vw.queryVs))
		for i, qv := range vw.queryVs {
			qs[i] = core.Query{Column: "emb", Vector: qv, K: 10, NProbe: 4, Refine: 2, Snapshot: -1}
		}
		return vw.world, qs, nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, vector)

	fmt.Fprintf(out, "Read cache warm-vs-cold (repeated query sets)\n")
	fmt.Fprintf(out, "%-10s %9s %12s %12s %8s %9s %9s %8s %7s\n",
		"workload", "queries", "cold_lat", "warm_lat", "speedup", "cold_GETs", "warm_GETs", "GET_red", "hits")
	for _, w := range res.Workloads {
		fmt.Fprintf(out, "%-10s %9d %12v %12v %7.1fx %9d %9d %7.1fx %7d\n",
			w.Workload, w.Queries, w.ColdLatency.Round(time.Microsecond), w.WarmLatency.Round(time.Microsecond),
			w.Speedup, w.ColdGETs, w.WarmGETs, w.GETReduction, w.Hits)
	}
	return res, nil
}
