package bench

import (
	"testing"
	"time"
)

// TestIngestShapes asserts the continuous-ingestion acceptance shape:
// with 8 producers the group-commit writer issues at least 4x fewer
// conditional PUTs on the log than per-batch appends (the commit
// counts are exact version deltas, not timings, so this holds under
// the race detector too), and the scheduler records a searchable lag
// for every committed file with sane percentiles.
func TestIngestShapes(t *testing.T) {
	res, err := Ingest(Options{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PutReduction < 4 {
		t.Errorf("conditional-PUT reduction %.1fx, want >= 4x (%d baseline vs %d grouped rounds)",
			res.PutReduction, res.BaselineCommitRounds, res.GroupedCommitRounds)
	}
	if res.BaselineCommitRounds != int64(res.Producers*res.BatchesPerProducer) {
		t.Errorf("baseline committed %d rounds, want one per batch (%d)",
			res.BaselineCommitRounds, res.Producers*res.BatchesPerProducer)
	}
	if res.LagSamples == 0 {
		t.Fatal("no searchable-lag samples collected")
	}
	if res.LagP50 <= 0 || res.LagP99 < res.LagP50 {
		t.Errorf("lag percentiles out of order: p50 %v, p99 %v", res.LagP50, res.LagP99)
	}
	if res.LagP99 > time.Minute {
		t.Errorf("searchable lag p99 %v, want bounded well under a virtual minute", res.LagP99)
	}
	if res.QueryQPS <= 0 {
		t.Errorf("foreground query QPS %.2f, want > 0", res.QueryQPS)
	}
}
