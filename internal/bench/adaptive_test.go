package bench

import "testing"

// TestAdaptiveShapes pins the workload-adaptive maintenance claims on
// the Zipf workload: the heat-driven scheduler spends at least 2x
// fewer maintenance store-requests than index-everything, without
// giving up hot-partition freshness or query latency — and the
// never-queried column's index is never built at all.
func TestAdaptiveShapes(t *testing.T) {
	res, err := Adaptive(Options{Seed: 21, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveMaintRequests <= 0 || res.IndexAllMaintRequests <= 0 {
		t.Fatalf("maintenance did not run: adaptive=%d index_all=%d",
			res.AdaptiveMaintRequests, res.IndexAllMaintRequests)
	}
	// The headline: >= 2x fewer maintenance requests.
	if res.MaintRequestReduction < 2 {
		t.Errorf("maintenance-request reduction = %.2fx, want >= 2x (adaptive=%d index_all=%d)",
			res.MaintRequestReduction, res.AdaptiveMaintRequests, res.IndexAllMaintRequests)
	}
	// The saving is not freshness in disguise: the hot partition's
	// searchable lag must be no worse than index-everything's.
	if res.AdaptiveHotLagP50 > res.IndexAllHotLagP50 {
		t.Errorf("adaptive hot-lag p50 %v worse than index-all %v",
			res.AdaptiveHotLagP50, res.IndexAllHotLagP50)
	}
	// Nor query speed: the Zipf mix must run as fast as with every
	// index eagerly fresh (10% slack absorbs probe-order noise).
	if float64(res.AdaptiveQueryP50) > float64(res.IndexAllQueryP50)*1.10 {
		t.Errorf("adaptive query p50 %v worse than index-all %v",
			res.AdaptiveQueryP50, res.IndexAllQueryP50)
	}
	if float64(res.AdaptiveQueryP99) > float64(res.IndexAllQueryP99)*1.10 {
		t.Errorf("adaptive query p99 %v worse than index-all %v",
			res.AdaptiveQueryP99, res.IndexAllQueryP99)
	}
	// The cold column is where the saving comes from: the autopilot
	// demotes it, so adaptive builds zero entries while index-all
	// builds them all.
	if res.AdaptiveColdEntries != 0 {
		t.Errorf("adaptive built %d index entries for the never-queried column, want 0",
			res.AdaptiveColdEntries)
	}
	if res.IndexAllColdEntries == 0 {
		t.Errorf("index-all built no cold-column entries; the comparison is vacuous")
	}
}
