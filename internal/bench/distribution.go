package bench

import (
	"context"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/parquet"
	"rottnest/internal/workload"
)

// DistributionPoint is one text distribution's measured outcome.
type DistributionPoint struct {
	// ZipfS is the word-frequency skew (higher = more repetitive =
	// lower entropy).
	ZipfS float64
	// VocabSize is the vocabulary size.
	VocabSize int
	// RawBytes / IndexBytes are the measured footprints.
	RawBytes, IndexBytes int64
	// IndexRatio is IndexBytes / RawBytes — what drives cpm_r.
	IndexRatio float64
	// WindowLo is the 10-month brute-force boundary of the derived
	// phase diagram.
	WindowLo float64
}

// DistributionResult holds the entropy sweep.
type DistributionResult struct {
	Points []DistributionPoint
}

// DistributionSensitivity is an extension experiment for Section
// VII-D2's observation that the TCO parameters depend on the *data
// distribution* in nonlinear ways ("entropy influences compression
// efficacy for text datasets"): the same byte volume of text at
// different entropies yields different index/raw size ratios, moving
// the brute-force phase boundary exactly as Figure 12's cpm_r knob
// predicts.
func DistributionSensitivity(opts Options) (*DistributionResult, error) {
	ctx := context.Background()
	out := opts.out()
	res := &DistributionResult{}

	configs := []struct {
		zipfS float64
		vocab int
	}{
		{1.01, 60000}, // near-uniform words: high entropy
		{1.1, 30000},  // web-like
		{1.4, 8000},   // skewed
		{2.0, 2000},   // highly repetitive: low entropy
	}
	docs := opts.scaleInt(6000, 2000)

	fmt.Fprintln(out, "# Distribution sensitivity (VII-D2): text entropy vs index ratio vs boundary")
	fmt.Fprintf(out, "%-8s %-8s %-10s %-10s %-10s %-12s\n", "zipfS", "vocab", "raw MB", "index MB", "idx/raw", "boundary@10mo")
	for _, cfg := range configs {
		w, err := newWorld(textSchema, core.Config{})
		if err != nil {
			return nil, err
		}
		gen := workload.NewTextGen(workload.TextConfig{
			Seed: opts.Seed, VocabSize: cfg.vocab, ZipfS: cfg.zipfS, DocWords: 80,
		})
		ds := gen.Docs(docs)
		batch := parquet.NewBatch(textSchema)
		vals := make([][]byte, len(ds))
		for i, d := range ds {
			vals[i] = []byte(d)
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: vals}
		if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 2048, PageBytes: 32 << 10}); err != nil {
			return nil, err
		}
		buildTime, err := w.indexAndCompact(ctx, "body", component.KindFM)
		if err != nil {
			return nil, err
		}
		raw, err := w.rawBytes(ctx)
		if err != nil {
			return nil, err
		}
		index, err := w.indexBytes(ctx)
		if err != nil {
			return nil, err
		}
		w.traced(opts.Trace, fmt.Sprintf("distribution.s%.1f", cfg.zipfS))
		lat, err := w.searchLatency(ctx, []core.Query{{
			Column: "body", Substring: []byte(ds[docs/2][:10]), K: 10, Snapshot: -1,
		}})
		if err != nil {
			return nil, err
		}
		m := derive("text", raw, index, buildTime, lat, PaperTextBytes)
		lo, _, ok := m.Params.RottnestWindow(10)
		if !ok {
			lo = 0
		}
		point := DistributionPoint{
			ZipfS:      cfg.zipfS,
			VocabSize:  cfg.vocab,
			RawBytes:   raw,
			IndexBytes: index,
			IndexRatio: float64(index) / float64(raw),
			WindowLo:   lo,
		}
		res.Points = append(res.Points, point)
		fmt.Fprintf(out, "%-8.2f %-8d %-10.2f %-10.2f %-10.2f %-12.1e\n",
			cfg.zipfS, cfg.vocab, float64(raw)/1e6, float64(index)/1e6, point.IndexRatio, lo)
	}
	fmt.Fprintln(out, "\n(the brute-force boundary tracks the index/raw ratio: distributions that")
	fmt.Fprintln(out, "compress the raw data well but not the index push the boundary up — the")
	fmt.Fprintln(out, "cpm_r effect of Fig 12 arising from data entropy rather than a knob)")
	return res, nil
}
