package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/tco"
)

// RecallPoint is one tuned (nprobe, refine) operating point.
type RecallPoint struct {
	Target  float64
	Reached float64
	NProbe  int
	Refine  int
	Latency time.Duration
	Params  tco.Params
	// WindowLo/Hi bound Rottnest's winning region at 10 months.
	WindowLo, WindowHi float64
}

// Fig9Result holds the recall-target sweep of Figure 9.
type Fig9Result struct {
	Points []RecallPoint
	// LatencyRatio is the worst/best latency across targets (the
	// paper reports ~1.35x between recall 0.97 and 0.87).
	LatencyRatio float64
	// WindowShift is the max log10 shift of the 10-month window
	// boundaries across targets (the paper: barely moves).
	WindowShift float64
}

// Fig9VectorPhases reproduces Figure 9: phase diagrams for vector
// search at increasing recall targets. Higher recall costs more
// latency (larger nprobe/refine), but because cpq_r is orders of
// magnitude below cpm_i, the Rottnest-optimal region on the log-log
// plot barely moves — building the index stays the right call as
// recall requirements change.
func Fig9VectorPhases(opts Options) (*Fig9Result, error) {
	ctx := context.Background()
	out := opts.out()
	vw, err := newVectorWorldSpread(opts.Seed+3, opts.scaleInt(60000, 15000), 32, opts.scaleInt(25, 10), 512, 0.8, core.Config{})
	if err != nil {
		return nil, err
	}
	buildTime, err := vw.indexAndCompact(ctx, "emb", component.KindIVFPQ)
	if err != nil {
		return nil, err
	}
	raw, err := vw.rawBytes(ctx)
	if err != nil {
		return nil, err
	}
	index, err := vw.indexBytes(ctx)
	if err != nil {
		return nil, err
	}

	// Sweep (nprobe, refine) from cheap to thorough and pick the
	// first configuration reaching each recall target.
	type cfg struct{ nprobe, refine int }
	sweep := []cfg{{1, 20}, {2, 30}, {3, 40}, {4, 60}, {6, 80}, {8, 120}, {12, 160}, {16, 240}, {24, 320}, {32, 480}}
	type sweepPoint struct {
		cfg     cfg
		recall  float64
		latency time.Duration
	}
	var points []sweepPoint
	for _, c := range sweep {
		vw.traced(opts.Trace, fmt.Sprintf("fig9.vector.nprobe%d", c.nprobe))
		recall, latency, err := vw.recallAt(ctx, 10, c.nprobe, c.refine)
		if err != nil {
			return nil, err
		}
		points = append(points, sweepPoint{cfg: c, recall: recall, latency: latency})
	}

	res := &Fig9Result{}
	fmt.Fprintln(out, "# Fig 9: vector search phase diagrams per recall target")
	fmt.Fprintf(out, "measured: raw %.1fMB, index %.1fMB, build %v\n",
		float64(raw)/1e6, float64(index)/1e6, buildTime.Round(time.Millisecond))
	for _, target := range []float64{0.87, 0.92, 0.97} {
		chosen := points[len(points)-1]
		for _, p := range points {
			if p.recall >= target {
				chosen = p
				break
			}
		}
		m := derive("vector", raw, index, buildTime, chosen.latency, PaperVectorBytes)
		p := m.Params
		lo, hi, ok := p.RottnestWindow(10)
		if !ok {
			return nil, fmt.Errorf("bench: vector recall %.2f: rottnest never wins", target)
		}
		rp := RecallPoint{
			Target: target, Reached: chosen.recall,
			NProbe: chosen.cfg.nprobe, Refine: chosen.cfg.refine,
			Latency: chosen.latency, Params: p,
			WindowLo: lo, WindowHi: hi,
		}
		res.Points = append(res.Points, rp)
		fmt.Fprintf(out, "\nrecall target %.2f: reached %.3f at nprobe=%d refine=%d, latency %v\n",
			target, chosen.recall, chosen.cfg.nprobe, chosen.cfg.refine, chosen.latency.Round(time.Millisecond))
		d := tco.ComputeDiagram(p, 0.25, 100, 1, 1e10, 36)
		fmt.Fprint(out, d.Render())
		fmt.Fprintf(out, "rottnest window at 10 months: %.1e .. %.1e (%.1f orders of magnitude)\n",
			lo, hi, math.Log10(hi/lo))
	}

	// Cross-target comparisons.
	minLat, maxLat := res.Points[0].Latency, res.Points[0].Latency
	for _, p := range res.Points {
		if p.Latency < minLat {
			minLat = p.Latency
		}
		if p.Latency > maxLat {
			maxLat = p.Latency
		}
	}
	res.LatencyRatio = float64(maxLat) / float64(minLat)
	for i := 1; i < len(res.Points); i++ {
		shift := math.Abs(math.Log10(res.Points[i].WindowHi / res.Points[0].WindowHi))
		if s := math.Abs(math.Log10(res.Points[i].WindowLo / res.Points[0].WindowLo)); s > shift {
			shift = s
		}
		if shift > res.WindowShift {
			res.WindowShift = shift
		}
	}
	fmt.Fprintf(out, "\nlatency ratio across targets: %.2fx; max window boundary shift: %.2f orders of magnitude\n",
		res.LatencyRatio, res.WindowShift)
	return res, nil
}
