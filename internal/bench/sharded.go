package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/shard"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// ShardedPoint is one measured scatter-gather configuration: K
// concurrent Zipf clients replaying a UUID query mix through a router
// at N shards × M replicas.
type ShardedPoint struct {
	Shards   int  `json:"shards"`
	Replicas int  `json:"replicas"`
	Clients  int  `json:"clients"`
	Hedge    bool `json:"hedge"`
	Queries  int  `json:"queries"`
	// Per-query virtual latency percentiles across the whole stream.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// QPS is queries / virtual makespan (slowest client's summed
	// latency; clients run concurrently).
	QPS float64 `json:"qps"`
	// Hedges and HedgeWins total the hedged shard fan-outs across the
	// stream and how many the hedge replica won.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
}

// ShardedResult reports the sharded serving benchmark: a shard-count
// scaling sweep at one replica, then the same 2-shard × 2-replica
// deployment with one degraded replica measured hedge-off vs hedge-on.
type ShardedResult struct {
	// Scaling is the N-shard sweep (M=1, no hedging): aggregate QPS
	// should grow with shards because each worker probes only its file
	// range's index entries.
	Scaling []ShardedPoint `json:"scaling"`
	// HedgeOff and HedgeOn share a deployment where every request to
	// replica 1 pays a latency spike; hedging should claw back the p99.
	HedgeOff ShardedPoint `json:"hedge_off"`
	HedgeOn  ShardedPoint `json:"hedge_on"`
}

// shardedWorld ingests `batches` UUID files and indexes each one into
// its own trie entry (no index compaction), so a shard's file range
// maps onto a proportional slice of the index entries and per-worker
// probe waves shrink as the shard count grows.
func shardedWorld(seed int64, batches, rows int) (*uuidWorld, error) {
	ctx := context.Background()
	w, err := newWorld(uuidSchema, core.Config{})
	if err != nil {
		return nil, err
	}
	gen := workload.NewUUIDGen(seed)
	uw := &uuidWorld{world: w}
	for b := 0; b < batches; b++ {
		ks := gen.Batch(rows)
		uw.keys = append(uw.keys, ks...)
		batch := parquet.NewBatch(uuidSchema)
		ids := make([][]byte, len(ks))
		for i := range ks {
			k := ks[i]
			ids[i] = k[:]
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: ids}
		if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 1024, PageBytes: 16 << 10}); err != nil {
			return nil, err
		}
		if _, err := w.client.Index(ctx, "id", component.KindTrie); err != nil {
			return nil, err
		}
	}
	return uw, nil
}

// shardedPass replays a Zipf stream through the router with `clients`
// concurrent goroutines, exactly like servePass does for the
// single-node client.
func shardedPass(ctx context.Context, r *shard.Router, universe []core.Query, clients, perClient int, seed int64) (ShardedPoint, error) {
	pt := ShardedPoint{
		Shards:   r.Shards(),
		Replicas: r.Replicas(),
		Clients:  clients,
		Queries:  clients * perClient,
	}
	perClientLats := make([][]time.Duration, clients)
	hedges := make([]int64, clients)
	hedgeWins := make([]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(universe)-1))
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := universe[zipf.Uint64()]
				res, err := r.Search(simtime.With(ctx, simtime.NewSession()), q)
				if err != nil {
					errs[c] = err
					return
				}
				lats = append(lats, res.Stats.Latency)
				hedges[c] += res.Stats.Hedges
				hedgeWins[c] += res.Stats.HedgeWins
			}
			perClientLats[c] = lats
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	var all []time.Duration
	var makespan time.Duration
	for c, lats := range perClientLats {
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		if sum > makespan {
			makespan = sum
		}
		all = append(all, lats...)
		pt.Hedges += hedges[c]
		pt.HedgeWins += hedgeWins[c]
	}
	const floor = time.Microsecond
	pt.P50 = percentile(all, 0.50)
	pt.P99 = percentile(all, 0.99)
	pt.QPS = float64(len(all)) * float64(time.Second) / float64(max(makespan, floor))
	return pt, nil
}

// Sharded benchmarks the scatter-gather serving tier. One UUID
// deployment with per-file trie index entries serves a Zipf query mix
// through routers at increasing shard counts (every worker capped to a
// narrow SearchWidth, so index probing is wave-limited and each
// shard's smaller entry slice finishes in fewer waves), then a 2×2
// deployment with a latency-spiked replica is measured with hedging
// off and on.
func Sharded(o Options) (*ShardedResult, error) {
	ctx := context.Background()
	out := o.out()
	batches, rows := o.scaleInt(16, 8), o.scaleInt(1200, 400)
	clients, perClient := o.scaleInt(8, 6), o.scaleInt(24, 10)

	uw, err := shardedWorld(o.Seed, batches, rows)
	if err != nil {
		return nil, err
	}
	universe := uw.queries(o.scaleInt(48, 16))
	res := &ShardedResult{}

	// All caches off: every query pays the in-situ read path, so the
	// sweep isolates the scatter win rather than cache warmth.
	baseOpts := shard.Options{
		IndexDir:             "rottnest",
		Clock:                uw.clock,
		Timeout:              time.Hour,
		SearchWidth:          2,
		CacheBytes:           -1,
		DecodedCacheBytes:    -1,
		PlanCacheTTLVersions: -1,
		ProbeBatchBytes:      -1,
	}

	for _, n := range []int{1, 2, 4} {
		op := baseOpts
		op.Shards = n
		r, err := shard.New(ctx, uw.store, "lake", op)
		if err != nil {
			return nil, err
		}
		pt, err := shardedPass(ctx, r, universe, clients, perClient, o.Seed)
		if err != nil {
			return nil, err
		}
		res.Scaling = append(res.Scaling, pt)
	}

	// Hedging: replica 1 of both shards pays a spike on every request;
	// round-robin primaries land half the stream on it. With hedging
	// the router's percentile deadline (trained on the fast replica's
	// samples) fires a hedge to the healthy replica and charges
	// min(primary, deadline+hedge).
	slowReplica := func(si, rep int, s objectstore.Store) objectstore.Store {
		if rep != 1 {
			return s
		}
		profile := objectstore.FaultProfile{
			Seed:         o.Seed + int64(si),
			Latency:      1.0,
			SpikeLatency: 400 * time.Millisecond,
		}
		return objectstore.NewStack(s, objectstore.StackOptions{
			Faults:     &profile,
			CacheBytes: -1,
		}).Store
	}
	for _, hedge := range []bool{false, true} {
		op := baseOpts
		op.Shards, op.Replicas = 2, 2
		op.ReplicaWrap = slowReplica
		if hedge {
			// The window mixes fast- and slow-primary samples about
			// evenly; the 25th percentile stays on the fast side so a
			// spiked primary always trips the deadline.
			op.Hedge = shard.HedgeOptions{Enabled: true, Percentile: 0.25, Window: 32}
		}
		r, err := shard.New(ctx, uw.store, "lake", op)
		if err != nil {
			return nil, err
		}
		// Train each shard's latency window before measuring: a fresh
		// router's first queries see an empty window (no hedge deadline
		// yet), and under concurrent clients several slow-primary
		// queries would slip through unhedged and own the p99.
		for i := 0; i < 4 && i < len(universe); i++ {
			if _, err := r.Search(simtime.With(ctx, simtime.NewSession()), universe[i]); err != nil {
				return nil, err
			}
		}
		pt, err := shardedPass(ctx, r, universe, clients, perClient, o.Seed)
		if err != nil {
			return nil, err
		}
		pt.Hedge = hedge
		if hedge {
			res.HedgeOn = pt
		} else {
			res.HedgeOff = pt
		}
	}

	fmt.Fprintf(out, "Sharded scatter-gather serving: %d files, %d clients, Zipf mix\n", batches, clients)
	fmt.Fprintf(out, "%-22s %7s %9s %9s %9s %7s %7s\n",
		"config", "queries", "p50", "p99", "QPS", "hedges", "wins")
	row := func(label string, p ShardedPoint) {
		fmt.Fprintf(out, "%-22s %7d %9v %9v %9.2f %7d %7d\n",
			label, p.Queries, p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond),
			p.QPS, p.Hedges, p.HedgeWins)
	}
	for _, p := range res.Scaling {
		row(fmt.Sprintf("%d shards x %d replica", p.Shards, p.Replicas), p)
	}
	row("2x2 slow replica", res.HedgeOff)
	row("2x2 slow + hedging", res.HedgeOn)
	return res, nil
}
