package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ingest"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// IngestResult reports the continuous-ingestion experiment.
//
// Phase A (amortization): P producers each commit B micro-batches,
// once through per-batch lake appends (one conditional PUT per batch)
// and once through the group-commit writer (one conditional PUT per
// group of up to P batches). Commit rounds are counted exactly as lake
// version advances, so the reduction is the paper-level claim: group
// commit divides the log's conditional-PUT rate by the group size.
//
// Phase B (freshness): the same stream runs beside the budgeted
// maintenance scheduler; every committed file's searchable lag (ack →
// covered by the index, in virtual time) is recorded exactly via the
// scheduler's OnCovered hook, and foreground queries run against the
// latest snapshot throughout.
type IngestResult struct {
	Producers          int `json:"producers"`
	BatchesPerProducer int `json:"batches_per_producer"`
	RowsPerBatch       int `json:"rows_per_batch"`

	// Commit rounds (== conditional PUTs on the log) per ingest mode.
	BaselineCommitRounds int64   `json:"baseline_commit_rounds"`
	GroupedCommitRounds  int64   `json:"grouped_commit_rounds"`
	PutReduction         float64 `json:"put_reduction"`

	// Ingest throughput in batches per virtual second.
	BaselineIngestQPS float64 `json:"baseline_ingest_qps"`
	GroupedIngestQPS  float64 `json:"grouped_ingest_qps"`

	// Freshness under concurrent maintenance (phase B).
	RowsIngested int64         `json:"rows_ingested"`
	LagSamples   int           `json:"lag_samples"`
	LagP50       time.Duration `json:"searchable_lag_p50_ns"`
	LagP99       time.Duration `json:"searchable_lag_p99_ns"`
	QueryQPS     float64       `json:"query_qps"`
}

// ingestBatch builds one producer micro-batch of uuid rows.
func ingestBatch(gen *workload.UUIDGen, rows int) (*parquet.Batch, [][16]byte) {
	ks := gen.Batch(rows)
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, rows)
	for i := range ks {
		k := ks[i]
		ids[i] = k[:]
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	return b, ks
}

// Ingest runs both phases and prints the comparison table.
func Ingest(o Options) (*IngestResult, error) {
	ctx := context.Background()
	out := o.out()
	res := &IngestResult{
		Producers:          8,
		BatchesPerProducer: o.scaleInt(16, 6),
		RowsPerBatch:       128,
	}
	totalBatches := res.Producers * res.BatchesPerProducer

	// Phase A baseline: one lake append (one commit round) per batch.
	base, err := newWorld(uuidSchema, core.Config{})
	if err != nil {
		return nil, err
	}
	gen := workload.NewUUIDGen(o.Seed)
	before, err := base.table.Version(ctx)
	if err != nil {
		return nil, err
	}
	var baseTime time.Duration
	for i := 0; i < totalBatches; i++ {
		b, _ := ingestBatch(gen, res.RowsPerBatch)
		session := simtime.NewSession()
		if _, err := base.table.Append(simtime.With(ctx, session), b, parquet.WriterOptions{}); err != nil {
			return nil, err
		}
		baseTime += session.Elapsed()
	}
	after, err := base.table.Version(ctx)
	if err != nil {
		return nil, err
	}
	res.BaselineCommitRounds = after - before

	// Phase A grouped: the same stream through the writer, producers
	// interleaving round-robin so every flush finds a full group. The
	// writer is in manual mode: grouping is exact, not racy.
	grouped, err := newWorld(uuidSchema, core.Config{})
	if err != nil {
		return nil, err
	}
	gen = workload.NewUUIDGen(o.Seed)
	w := ingest.NewWriter(grouped.table, ingest.WriterOptions{
		MaxBatchRows:       res.RowsPerBatch,
		GroupCommitBatches: res.Producers,
		Clock:              grouped.clock,
		Manual:             true,
	})
	before, err = grouped.table.Version(ctx)
	if err != nil {
		return nil, err
	}
	var groupTime time.Duration
	for round := 0; round < res.BatchesPerProducer; round++ {
		session := simtime.NewSession()
		sctx := simtime.With(ctx, session)
		for p := 0; p < res.Producers; p++ {
			b, _ := ingestBatch(gen, res.RowsPerBatch)
			if _, err := w.Append(sctx, b); err != nil {
				return nil, err
			}
		}
		if err := w.Flush(sctx); err != nil {
			return nil, err
		}
		groupTime += session.Elapsed()
	}
	after, err = grouped.table.Version(ctx)
	if err != nil {
		return nil, err
	}
	if err := w.Close(ctx); err != nil {
		return nil, err
	}
	res.GroupedCommitRounds = after - before
	if res.GroupedCommitRounds > 0 {
		res.PutReduction = float64(res.BaselineCommitRounds) / float64(res.GroupedCommitRounds)
	}
	sec := func(d time.Duration) float64 { return float64(d) / float64(time.Second) }
	if baseTime > 0 {
		res.BaselineIngestQPS = float64(totalBatches) / sec(baseTime)
	}
	if groupTime > 0 {
		res.GroupedIngestQPS = float64(totalBatches) / sec(groupTime)
	}

	// Phase B: ingest + scheduler + foreground queries on one world.
	fresh, err := newWorld(uuidSchema, core.Config{})
	if err != nil {
		return nil, err
	}
	var lags []time.Duration
	gen = workload.NewUUIDGen(o.Seed + 1)
	fw := ingest.NewWriter(fresh.table, ingest.WriterOptions{
		MaxBatchRows:       res.RowsPerBatch,
		GroupCommitBatches: res.Producers,
		Clock:              fresh.clock,
		Manual:             true,
	})
	sched := ingest.NewScheduler(fresh.table, ingest.SchedulerOptions{
		Config: core.Config{
			IndexDir: "rottnest", CacheBytes: -1, DecodedCacheBytes: -1,
			PlanCacheTTLVersions: -1, ProbeBatchBytes: -1,
		},
		Writer:    fw,
		Specs:     []core.IndexSpec{{Column: "id", Kind: component.KindTrie}},
		Clock:     fresh.clock,
		OnCovered: func(_ string, _ int64, lag time.Duration) { lags = append(lags, lag) },
	})
	rounds := o.scaleInt(10, 5)
	var keys [][16]byte
	var queryTime time.Duration
	queries := 0
	for round := 0; round < rounds; round++ {
		sctx := simtime.With(ctx, simtime.NewSession())
		for p := 0; p < res.Producers; p++ {
			b, ks := ingestBatch(gen, res.RowsPerBatch)
			keys = append(keys, ks...)
			if _, err := fw.Append(sctx, b); err != nil {
				return nil, err
			}
		}
		if err := fw.Flush(sctx); err != nil {
			return nil, err
		}
		res.RowsIngested += int64(res.Producers * res.RowsPerBatch)
		// Indexing runs behind the stream: time passes, the scheduler
		// converges, and the covered files record their exact lag.
		fresh.clock.Advance(2 * time.Second)
		if err := sched.Quiesce(simtime.With(ctx, simtime.NewSession())); err != nil {
			return nil, err
		}
		// Foreground queries against the latest snapshot throughout.
		for i := 0; i < 4; i++ {
			k := keys[(round*7919+i*977)%len(keys)]
			session := simtime.NewSession()
			r, err := sched.Client().Search(simtime.With(ctx, session),
				core.Query{Column: "id", UUID: &k, K: 10, Snapshot: -1})
			if err != nil {
				return nil, err
			}
			if len(r.Matches) != 1 {
				return nil, fmt.Errorf("ingest bench: key matched %d times", len(r.Matches))
			}
			queryTime += session.Elapsed()
			queries++
		}
	}
	if err := fw.Close(ctx); err != nil {
		return nil, err
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	res.LagSamples = len(lags)
	if len(lags) > 0 {
		res.LagP50 = percentile(lags, 0.50)
		res.LagP99 = percentile(lags, 0.99)
	}
	if queryTime > 0 {
		res.QueryQPS = float64(queries) / sec(queryTime)
	}

	fmt.Fprintf(out, "Continuous ingestion: %d producers x %d batches x %d rows\n",
		res.Producers, res.BatchesPerProducer, res.RowsPerBatch)
	fmt.Fprintf(out, "%-22s %14s %14s\n", "", "per-batch", "group-commit")
	fmt.Fprintf(out, "%-22s %14d %14d\n", "commit rounds (PUTs)", res.BaselineCommitRounds, res.GroupedCommitRounds)
	fmt.Fprintf(out, "%-22s %14.1f %14.1f\n", "ingest batches/s", res.BaselineIngestQPS, res.GroupedIngestQPS)
	fmt.Fprintf(out, "conditional-PUT reduction: %.1fx\n", res.PutReduction)
	fmt.Fprintf(out, "searchable lag over %d files: p50 %v, p99 %v (query QPS %.1f)\n",
		res.LagSamples, res.LagP50.Round(time.Millisecond), res.LagP99.Round(time.Millisecond), res.QueryQPS)
	return res, nil
}
