package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// MultiIntersectResult compares a compound AND plan against executing
// its predicates as separate searches, on a cold deployment: the plan
// probes each index once, intersects candidate page sets in memory,
// and fetches each surviving page exactly once, so it should issue
// strictly fewer GETs and read strictly fewer pages.
type MultiIntersectResult struct {
	Queries int `json:"queries"`
	// Per-query means over the measured set.
	CompoundGETs  float64 `json:"compound_gets"`
	SeparateGETs  float64 `json:"separate_gets"`
	CompoundPages float64 `json:"compound_pages"`
	SeparatePages float64 `json:"separate_pages"`
	// Candidate pages before intersection and pages the intersection
	// pruned, per compound query.
	PagesCandidate float64 `json:"pages_candidate"`
	PagesPruned    float64 `json:"pages_pruned"`
	// GETSavings is SeparateGETs/CompoundGETs — the headline win.
	GETSavings      float64       `json:"get_savings"`
	CompoundLatency time.Duration `json:"compound_latency_ns"`
	SeparateLatency time.Duration `json:"separate_latency_ns"`
}

// MultiBatchResult compares a concurrent Zipf stream of compound
// queries with the shared-probe batcher on versus off. With the
// batcher on, concurrent and repeated identical probes coalesce onto
// one execution, so the probe-run count should collapse.
type MultiBatchResult struct {
	Clients  int `json:"clients"`
	Queries  int `json:"queries"`
	Universe int `json:"universe"`
	// Index probe executions over the measured pass.
	CoalescedProbeRuns   int64 `json:"coalesced_probe_runs"`
	IndependentProbeRuns int64 `json:"independent_probe_runs"`
	// ProbesCoalesced counts probes answered by a shared flight or the
	// probe memo instead of executing.
	ProbesCoalesced int64 `json:"probes_coalesced"`
	// ProbeSavings is IndependentProbeRuns/CoalescedProbeRuns.
	ProbeSavings   float64       `json:"probe_savings"`
	CoalescedP50   time.Duration `json:"coalesced_p50_ns"`
	IndependentP50 time.Duration `json:"independent_p50_ns"`
}

// MultiResult aggregates the multi-predicate planner experiment.
type MultiResult struct {
	Intersect MultiIntersectResult `json:"intersect"`
	Batch     MultiBatchResult     `json:"batch"`
}

var multiSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

// multiWorld is a two-indexed-column deployment: unique keys under a
// trie, documents with planted needles under an FM-index.
type multiWorld struct {
	*world
	keys    [][16]byte
	needles []string
	// needleRows[i] are the rows of batch i carrying needles[i].
	needleRows [][]int
}

func newMultiWorld(seed int64, batches, rowsPerBatch int, cfg core.Config) (*multiWorld, error) {
	ctx := context.Background()
	w, err := newWorld(multiSchema, cfg)
	if err != nil {
		return nil, err
	}
	uuidGen := workload.NewUUIDGen(seed)
	textGen := workload.NewTextGen(workload.DefaultTextConfig(seed))
	mw := &multiWorld{world: w}
	for b := 0; b < batches; b++ {
		ks := uuidGen.Batch(rowsPerBatch)
		docs := textGen.Docs(rowsPerBatch)
		needle := fmt.Sprintf("Ndl%dXq", b)
		rows := []int{rowsPerBatch / 4, rowsPerBatch / 2, 3 * rowsPerBatch / 4}
		docs = workload.PlantNeedle(docs, needle, rows)
		mw.keys = append(mw.keys, ks...)
		mw.needles = append(mw.needles, needle)
		mw.needleRows = append(mw.needleRows, rows)
		batch := parquet.NewBatch(multiSchema)
		ids := make([][]byte, rowsPerBatch)
		bodies := make([][]byte, rowsPerBatch)
		for i := range ks {
			k := ks[i]
			ids[i] = k[:]
			bodies[i] = []byte(docs[i])
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: ids}
		batch.Cols[1] = parquet.ColumnValues{Bytes: bodies}
		if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 4 << 10}); err != nil {
			return nil, err
		}
	}
	if _, err := mw.indexAndCompact(ctx, "id", component.KindTrie); err != nil {
		return nil, err
	}
	if _, err := mw.indexAndCompact(ctx, "body", component.KindFM); err != nil {
		return nil, err
	}
	return mw, nil
}

// pair returns the i-th measured (key, needle) pair: a needled row's
// key and its batch needle, so the AND of the two predicates is
// nonempty and exercises a real cross-column intersection.
func (m *multiWorld) pair(i, rowsPerBatch int) ([16]byte, string) {
	b := i % len(m.needles)
	row := m.needleRows[b][i%len(m.needleRows[b])]
	return m.keys[b*rowsPerBatch+row], m.needles[b]
}

// Multi measures the multi-predicate planner: (1) a compound AND plan
// versus its predicates run as separate searches — GETs, pages read,
// pages pruned by the page-set intersection; (2) a concurrent Zipf
// stream of identical compound queries with shared-probe batching on
// versus off — probe executions and coalesced probes.
func Multi(o Options) (*MultiResult, error) {
	ctx := context.Background()
	out := o.out()
	res := &MultiResult{}

	batches := o.scaleInt(6, 3)
	rowsPerBatch := o.scaleInt(2000, 600)
	nQueries := o.scaleInt(12, 6)

	// --- Intersection: compound plan vs separate searches, cold. ---
	mw, err := newMultiWorld(o.Seed, batches, rowsPerBatch, core.Config{})
	if err != nil {
		return nil, err
	}
	it := &res.Intersect
	it.Queries = nQueries
	for i := 0; i < nQueries; i++ {
		key, needle := mw.pair(i, rowsPerBatch)
		k := key

		before := mw.metrics.Snapshot()
		beforeReg := mw.client.Metrics()
		cres, err := mw.client.SearchCompound(simtime.With(ctx, simtime.NewSession()), core.CompoundQuery{
			Expr: core.And(
				core.PredUUID("id", k),
				core.PredSubstring("body", []byte(needle)),
			),
			K: 0, Snapshot: -1, Output: "body",
		})
		if err != nil {
			return nil, err
		}
		if len(cres.Matches) == 0 {
			return nil, fmt.Errorf("bench multi: compound query %d found nothing", i)
		}
		delta := mw.client.Metrics().Sub(beforeReg)
		it.CompoundGETs += float64(mw.metrics.Snapshot().Sub(before).Gets)
		it.CompoundPages += float64(cres.Stats.PagesProbed)
		it.PagesCandidate += float64(delta.Counter("search.pages_candidate"))
		it.PagesPruned += float64(delta.Counter("search.pages_pruned"))
		it.CompoundLatency += cres.Stats.Latency

		before = mw.metrics.Snapshot()
		for _, q := range []core.Query{
			{Column: "id", UUID: &k, K: 0, Snapshot: -1},
			{Column: "body", Substring: []byte(needle), K: 0, Snapshot: -1},
		} {
			sres, err := mw.client.Search(simtime.With(ctx, simtime.NewSession()), q)
			if err != nil {
				return nil, err
			}
			it.SeparatePages += float64(sres.Stats.PagesProbed)
			it.SeparateLatency += sres.Stats.Latency
		}
		it.SeparateGETs += float64(mw.metrics.Snapshot().Sub(before).Gets)
	}
	n := float64(nQueries)
	it.CompoundGETs /= n
	it.SeparateGETs /= n
	it.CompoundPages /= n
	it.SeparatePages /= n
	it.PagesCandidate /= n
	it.PagesPruned /= n
	it.CompoundLatency /= time.Duration(nQueries)
	it.SeparateLatency /= time.Duration(nQueries)
	if it.CompoundGETs > 0 {
		it.GETSavings = it.SeparateGETs / it.CompoundGETs
	}

	// --- Batching: Zipf stream, batcher on vs off. ---
	clients := o.scaleInt(8, 4)
	perClient := o.scaleInt(48, 16)
	universe := o.scaleInt(12, 6)
	bt := &res.Batch
	bt.Clients = clients
	bt.Queries = clients * perClient
	bt.Universe = universe

	run := func(batchBytes int64) ([]time.Duration, int64, int64, error) {
		w, err := newMultiWorld(o.Seed, batches, rowsPerBatch, core.Config{ProbeBatchBytes: batchBytes})
		if err != nil {
			return nil, 0, 0, err
		}
		qs := make([]core.CompoundQuery, universe)
		for i := range qs {
			key, needle := w.pair(i, rowsPerBatch)
			k := key
			qs[i] = core.CompoundQuery{
				Expr: core.And(
					core.PredUUID("id", k),
					core.PredSubstring("body", []byte(needle)),
				),
				K: 0, Snapshot: -1, Output: "body",
			}
		}
		before := w.client.Metrics()
		perClientLats := make([][]time.Duration, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.Seed + int64(c)*7919))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
				lats := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					q := qs[zipf.Uint64()]
					r, err := w.client.SearchCompound(simtime.With(ctx, simtime.NewSession()), q)
					if err != nil {
						errs[c] = err
						return
					}
					lats = append(lats, r.Stats.Latency)
				}
				perClientLats[c] = lats
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, 0, 0, err
			}
		}
		delta := w.client.Metrics().Sub(before)
		var all []time.Duration
		for _, lats := range perClientLats {
			all = append(all, lats...)
		}
		return all, delta.Counter("search.probe_runs"), delta.Counter("search.probe_coalesced"), nil
	}

	onLats, onRuns, onCoalesced, err := run(core.DefaultProbeBatchBytes)
	if err != nil {
		return nil, err
	}
	offLats, offRuns, _, err := run(-1)
	if err != nil {
		return nil, err
	}
	bt.CoalescedProbeRuns = onRuns
	bt.IndependentProbeRuns = offRuns
	bt.ProbesCoalesced = onCoalesced
	if onRuns > 0 {
		bt.ProbeSavings = float64(offRuns) / float64(onRuns)
	}
	bt.CoalescedP50 = percentile(onLats, 0.50)
	bt.IndependentP50 = percentile(offLats, 0.50)

	fmt.Fprintf(out, "Compound AND plan vs separate searches (%d queries, cold):\n", it.Queries)
	fmt.Fprintf(out, "  GETs/query      compound %.1f vs separate %.1f (%.2fx fewer)\n",
		it.CompoundGETs, it.SeparateGETs, it.GETSavings)
	fmt.Fprintf(out, "  pages/query     compound %.1f vs separate %.1f (candidate %.1f, pruned %.1f)\n",
		it.CompoundPages, it.SeparatePages, it.PagesCandidate, it.PagesPruned)
	fmt.Fprintf(out, "  latency/query   compound %v vs separate %v\n",
		it.CompoundLatency.Round(time.Microsecond), it.SeparateLatency.Round(time.Microsecond))
	fmt.Fprintf(out, "Shared-probe batching (%d clients x %d Zipf queries over %d distinct):\n",
		bt.Clients, perClient, bt.Universe)
	fmt.Fprintf(out, "  probe runs      batched %d vs independent %d (%.2fx fewer), %d coalesced\n",
		bt.CoalescedProbeRuns, bt.IndependentProbeRuns, bt.ProbeSavings, bt.ProbesCoalesced)
	fmt.Fprintf(out, "  p50 latency     batched %v vs independent %v\n",
		bt.CoalescedP50.Round(time.Microsecond), bt.IndependentP50.Round(time.Microsecond))
	return res, nil
}
