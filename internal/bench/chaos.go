package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objectstore"
)

// ChaosResult reports what a fault storm costs the search path when
// the retry layer absorbs it: per-query virtual latency clean vs
// stormy, and the recovery work performed.
type ChaosResult struct {
	Queries int `json:"queries"`
	// CleanLatency and StormLatency are mean virtual latencies per
	// query without and with faults+retries.
	CleanLatency time.Duration `json:"clean_latency_ns"`
	StormLatency time.Duration `json:"storm_latency_ns"`
	// Overhead is StormLatency/CleanLatency.
	Overhead float64 `json:"overhead"`
	// Retry-layer work across the whole deployment (ingest, indexing,
	// and the measured queries).
	Retries           int64 `json:"retries"`
	ThrottleWaits     int64 `json:"throttle_waits"`
	AmbiguousResolved int64 `json:"ambiguous_resolved"`
	// Injected fault counts by kind.
	Faults objectstore.FaultCounts `json:"faults"`
}

// Chaos measures the retry layer's latency overhead under a seeded
// fault storm: the same UUID deployment and query set run clean and
// under a FaultStore+RetryStore chain; every query must still succeed.
// The differential harness (internal/harness) proves the answers stay
// byte-for-byte correct; this experiment prices the recovery.
func Chaos(o Options) (*ChaosResult, error) {
	ctx := context.Background()
	out := o.out()
	batches, rows := o.scaleInt(6, 3), o.scaleInt(1500, 500)
	nq := o.scaleInt(40, 12)

	clean, err := newUUIDWorld(o.Seed, batches, rows, core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := clean.indexAndCompact(ctx, "id", component.KindTrie); err != nil {
		return nil, err
	}
	queries := clean.queries(nq)
	clean.traced(o.Trace, "chaos.clean")
	cleanLat, err := clean.searchLatency(ctx, queries)
	if err != nil {
		return nil, err
	}

	profile := objectstore.FaultProfile{
		Seed:          o.Seed,
		Transient:     0.05,
		Throttle:      0.02,
		ThrottleBurst: 2,
		Latency:       0.03,
		SpikeLatency:  200 * time.Millisecond,
		Deadline:      0.01,
		AmbiguousPut:  0.10,
	}
	policy := objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8, Seed: o.Seed}
	var faults *objectstore.FaultStore
	var retry *objectstore.RetryStore
	storm, err := newUUIDWorld(o.Seed, batches, rows, core.Config{},
		func(s objectstore.Store) objectstore.Store {
			// Retry above faults so ingest and indexing survive the
			// storm too; the client joins the same retry layer. Both
			// layers come from objectstore.NewStack — the canonical
			// composition path — with the cache disabled (the storm
			// must pay for every read).
			st := objectstore.NewStack(s, objectstore.StackOptions{
				Faults:     &profile,
				Retry:      policy,
				CacheBytes: -1,
			})
			faults, retry = st.Fault, st.Retry
			return st.Store
		})
	if err != nil {
		return nil, err
	}
	if _, err := storm.indexAndCompact(ctx, "id", component.KindTrie); err != nil {
		return nil, err
	}
	storm.traced(o.Trace, "chaos.storm")
	stormLat, err := storm.searchLatency(ctx, storm.queries(nq))
	if err != nil {
		return nil, err
	}

	res := &ChaosResult{
		Queries:      nq,
		CleanLatency: cleanLat,
		StormLatency: stormLat,
		Faults:       faults.Counts(),
	}
	stats := retry.Stats()
	res.Retries = stats.Retries
	res.ThrottleWaits = stats.ThrottleWaits
	res.AmbiguousResolved = stats.AmbiguousResolved
	if cleanLat > 0 {
		res.Overhead = float64(stormLat) / float64(cleanLat)
	}

	fmt.Fprintf(out, "Search under fault storm (retries on, seed %d)\n", o.Seed)
	fmt.Fprintf(out, "%-8s %12s %12s %9s %8s %10s %10s %12s\n",
		"queries", "clean_lat", "storm_lat", "overhead", "retries", "throttles", "ambiguous", "faults_total")
	fmt.Fprintf(out, "%-8d %12v %12v %8.2fx %8d %10d %10d %12d\n",
		res.Queries, res.CleanLatency.Round(time.Microsecond), res.StormLatency.Round(time.Microsecond),
		res.Overhead, res.Retries, res.ThrottleWaits, res.AmbiguousResolved, res.Faults.Total())
	return res, nil
}
