//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// experiment shape tests skip under it: experiments charge a mix of
// virtual store latency and real wall-clock CPU time (page decode,
// k-means), and race instrumentation inflates the real component far
// past the shape thresholds.
const raceEnabled = true
