package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rottnest/internal/adaptive"
	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ingest"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// AdaptiveResult reports the workload-adaptive maintenance experiment.
//
// A partitioned stream (ts identifies the partition) ingests
// continuously while a Zipf-skewed query mix hammers partition 0's id
// keys and never touches the two wide text columns (`note`, `tag`) at
// all — the classic lake shape: a handful of hot lookup columns
// beside bulky payload columns nobody searches. Three maintenance
// regimes run the identical stream and query schedule on identical
// worlds:
//
//   - adaptive: the heat ledger taps the query stream, index jobs
//     chase hot files first, and the TCO autopilot demotes the
//     never-queried columns to the scan path — so their FM indexes
//     (the expensive ones: every build reads the whole column) are
//     simply never built.
//   - index_all: the static scheduler keeps every spec fresh (the
//     index-everything default of PR 9).
//   - scan_only: no maintenance at all; every query brute-scans.
//
// Maintenance cost is the scheduler's own ingest.job_requests meter:
// the store requests its jobs (and the autopilot's refreshes) issue,
// with the daemon's fixed-cadence observation polling reported
// separately. Searchable lag is the scheduler's exact per-file
// measurement — restricted here to the hot partition's files, the
// data the workload actually reads.
type AdaptiveResult struct {
	Rounds          int `json:"rounds"`
	Partitions      int `json:"partitions"`
	RowsPerBatch    int `json:"rows_per_batch"`
	QueriesPerRound int `json:"queries_per_round"`

	// Store requests issued by maintenance jobs (index/compact/vacuum
	// builds and the autopilot's refreshes — the scheduler's own
	// ingest.job_requests meter) to reach full steady state.
	AdaptiveMaintRequests int64   `json:"adaptive_maint_requests"`
	IndexAllMaintRequests int64   `json:"index_all_maint_requests"`
	MaintRequestReduction float64 `json:"maint_request_reduction"`

	// The same bills with the daemon's observation polling included
	// (polling is per-tick and regime-independent, so it dilutes the
	// ratio but is reported for transparency).
	AdaptiveTotalRequests int64 `json:"adaptive_total_requests"`
	IndexAllTotalRequests int64 `json:"index_all_total_requests"`

	// Index entries built for the never-queried column.
	AdaptiveColdEntries int `json:"adaptive_cold_index_entries"`
	IndexAllColdEntries int `json:"index_all_cold_index_entries"`

	// Searchable lag of the hot partition's files (ack → covered).
	AdaptiveHotLagP50 time.Duration `json:"adaptive_hot_lag_p50_ns"`
	AdaptiveHotLagP99 time.Duration `json:"adaptive_hot_lag_p99_ns"`
	IndexAllHotLagP50 time.Duration `json:"index_all_hot_lag_p50_ns"`
	IndexAllHotLagP99 time.Duration `json:"index_all_hot_lag_p99_ns"`

	// Steady-state foreground query latency (virtual): the Zipf mix
	// re-run once every regime's maintenance has fully drained, so the
	// regimes are compared at their own converged index states.
	AdaptiveQueryP50 time.Duration `json:"adaptive_query_p50_ns"`
	AdaptiveQueryP99 time.Duration `json:"adaptive_query_p99_ns"`
	IndexAllQueryP50 time.Duration `json:"index_all_query_p50_ns"`
	IndexAllQueryP99 time.Duration `json:"index_all_query_p99_ns"`
	ScanQueryP50     time.Duration `json:"scan_query_p50_ns"`
	ScanQueryP99     time.Duration `json:"scan_query_p99_ns"`

	// Mid-stream query latency, measured while ingest and maintenance
	// race (reported for context; freshness differences dominate it —
	// the regime with *better* hot coverage pays probe depth where the
	// stale one scans).
	AdaptiveStreamQueryP50 time.Duration `json:"adaptive_stream_query_p50_ns"`
	IndexAllStreamQueryP50 time.Duration `json:"index_all_stream_query_p50_ns"`
}

// adaptiveColdCols are the wide payload columns nobody searches. A
// real lake table carries many of these beside its few hot lookup
// keys; index-everything pays a build for every one of them.
var adaptiveColdCols = []string{"note", "tag", "meta", "raw"}

var adaptiveSchema = parquet.MustSchema(
	parquet.Column{Name: "ts", Type: parquet.TypeInt64},
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "note", Type: parquet.TypeByteArray},
	parquet.Column{Name: "tag", Type: parquet.TypeByteArray},
	parquet.Column{Name: "meta", Type: parquet.TypeByteArray},
	parquet.Column{Name: "raw", Type: parquet.TypeByteArray},
)

// adaptivePayloadBytes sizes the cold text columns: wide enough that
// an FM build reads many pages per file, the way real payload columns
// dwarf the 16-byte keys beside them.
const adaptivePayloadBytes = 512

// adaptivePayload builds one cold-column value: a unique header
// padded with filler to adaptivePayloadBytes.
func adaptivePayload(col string, round, part, row int) []byte {
	v := make([]byte, 0, adaptivePayloadBytes)
	v = append(v, fmt.Sprintf("%s-%d-%d-%d ", col, round, part, row)...)
	for i := 0; len(v) < adaptivePayloadBytes; i++ {
		v = append(v, byte('a'+(i+round*31+part*7+row)%26))
	}
	return v
}

// adaptiveMode selects the maintenance regime of one pass.
type adaptiveMode int

const (
	passAdaptive adaptiveMode = iota
	passIndexAll
	passScan
)

// adaptivePassResult is what one regime measured.
type adaptivePassResult struct {
	maintRequests int64 // job-issued store requests (ingest.job_requests)
	totalRequests int64 // everything the maintenance loop touched, polling included
	hotLags       []time.Duration
	streamLats    []time.Duration // queries racing ingest+maintenance
	steadyLats    []time.Duration // queries after the final drain
	coldEntries   int
	jobsIndex     int64
	jobsCompact   int64
	jobsVacuum    int64
}

// clientRequests sums the store request counters visible to the
// client — the same accounting the scheduler's budget uses.
func clientRequests(c *core.Client) int64 {
	m := c.Metrics()
	return m.Counter("store.gets") + m.Counter("store.puts") +
		m.Counter("store.lists") + m.Counter("store.deletes") + m.Counter("store.heads")
}

// adaptivePass runs the shared stream and query schedule under one
// maintenance regime.
func adaptivePass(o Options, rounds, partitions, rowsPerBatch, queriesPerRound int, mode adaptiveMode) (*adaptivePassResult, error) {
	ctx := context.Background()
	w, err := newWorld(adaptiveSchema, core.Config{})
	if err != nil {
		return nil, err
	}
	gen := workload.NewUUIDGen(o.Seed)
	rng := rand.New(rand.NewSource(o.Seed + 11))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(partitions-1))
	// Each partition's per-round rows land as several small data files
	// (MaxBatchRows seals them), so per-file maintenance work — build
	// reads, index commits, coverage bookkeeping — dominates the bill
	// the way it does on a real lake of many objects.
	const fileRows = 64
	filesPerPart := rowsPerBatch / fileRows
	writer := ingest.NewWriter(w.table, ingest.WriterOptions{
		MaxBatchRows:       fileRows,
		GroupCommitBatches: partitions * filesPerPart,
		Parquet:            parquet.WriterOptions{RowGroupRows: 512, PageBytes: 4 << 10},
		Clock:              w.clock,
		Manual:             true,
	})
	specs := []core.IndexSpec{{Column: "id", Kind: component.KindTrie}}
	for _, col := range adaptiveColdCols {
		specs = append(specs, core.IndexSpec{Column: col, Kind: component.KindFM})
	}
	coveredLag := make(map[string]time.Duration)
	var sched *ingest.Scheduler
	if mode != passScan {
		sopts := ingest.SchedulerOptions{
			Client:         w.client,
			Writer:         writer,
			Specs:          specs,
			Clock:          w.clock,
			RequestsPerSec: 60,
			// Compact early: with many small per-round files, probe cost
			// tracks entry count, so both regimes merge aggressively.
			Policy:    core.MaintainPolicy{CompactWhenEntries: 4},
			OnCovered: func(path string, _ int64, lag time.Duration) { coveredLag[path] = lag },
		}
		if mode == passAdaptive {
			ledger := adaptive.NewLedger(adaptive.LedgerOptions{HalfLife: 30 * time.Second, Clock: w.clock})
			w.client.SetHeatObserver(ledger)
			rowBytes := len(adaptiveColdCols)*adaptivePayloadBytes + 24
			pilot := adaptive.NewAutopilot(w.client, ledger, specs, adaptive.AutopilotOptions{
				RefreshEvery: 10 * time.Second,
				Clock:        w.clock,
				// Bridge the laptop-scale lake to the paper's UUID
				// corpus, as every TCO figure does, so the phase diagram
				// is evaluated at deployment scale.
				ScaleFactor: PaperUUIDBytes / float64(rounds*partitions*rowsPerBatch*rowBytes),
			})
			sopts.Adaptive = adaptive.NewPolicy(adaptive.PolicyOptions{
				Ledger: ledger,
				Pilot:  pilot,
				Client: w.client,
			})
		}
		sched = ingest.NewScheduler(w.table, sopts)
	}

	res := &adaptivePassResult{}
	keysByPart := make([][][16]byte, partitions)
	// One Zipf-drawn point lookup with the partition filter that
	// concentrates heat: partition 0 dominates the draw.
	zipfQuery := func() (time.Duration, error) {
		p := int(zipf.Uint64())
		ks := keysByPart[p]
		k := ks[rng.Intn(len(ks))]
		session := simtime.NewSession()
		r, err := w.client.Search(simtime.With(ctx, session), core.Query{
			Column: "id", UUID: &k, K: 10, Snapshot: -1,
			Partition: &core.PartitionFilter{Column: "ts", Min: int64(p), Max: int64(p)},
		})
		if err != nil {
			return 0, err
		}
		if len(r.Matches) != 1 {
			return 0, fmt.Errorf("adaptive bench: key matched %d times", len(r.Matches))
		}
		return r.Stats.Latency, nil
	}
	for round := 0; round < rounds; round++ {
		sctx := simtime.With(ctx, simtime.NewSession())
		for p := 0; p < partitions; p++ {
			for fb := 0; fb < filesPerPart; fb++ {
				ks := gen.Batch(fileRows)
				keysByPart[p] = append(keysByPart[p], ks...)
				b := parquet.NewBatch(adaptiveSchema)
				ts := make([]int64, fileRows)
				ids := make([][]byte, fileRows)
				for i := range ks {
					k := ks[i]
					ts[i] = int64(p)
					ids[i] = k[:]
				}
				b.Cols[0] = parquet.ColumnValues{Ints: ts}
				b.Cols[1] = parquet.ColumnValues{Bytes: ids}
				for c, col := range adaptiveColdCols {
					vals := make([][]byte, fileRows)
					for i := range vals {
						vals[i] = adaptivePayload(col, round, p, fb*fileRows+i)
					}
					b.Cols[2+c] = parquet.ColumnValues{Bytes: vals}
				}
				if _, err := writer.Append(sctx, b); err != nil {
					return nil, err
				}
			}
		}
		if err := writer.Flush(sctx); err != nil {
			return nil, err
		}

		// The Zipf query mix: partition 0 takes the bulk of the reads,
		// the cold payload columns take none. Queries run before the
		// round's maintenance, so the heat observed here steers the
		// jobs that follow — the adaptive loop's intended causality.
		for q := 0; q < queriesPerRound; q++ {
			lat, err := zipfQuery()
			if err != nil {
				return nil, err
			}
			res.streamLats = append(res.streamLats, lat)
		}

		// Budgeted maintenance: fixed virtual ticks per round, one
		// scheduling decision each — the paced daemon cadence, not a
		// drain-the-world loop. Every store request between the marks
		// is maintenance by construction (the stream and the queries
		// are quiet here); whatever backlog the budget leaves is paid
		// by the final drain below, so totals compare full bills.
		if sched != nil {
			before := clientRequests(w.client)
			for tick := 0; tick < 3; tick++ {
				w.clock.Advance(time.Second)
				if _, err := sched.Step(ctx); err != nil {
					return nil, err
				}
			}
			res.totalRequests += clientRequests(w.client) - before
		} else {
			w.clock.Advance(3 * time.Second)
		}
	}

	// Drain to steady state: the backlog a regime still owes is part
	// of its total maintenance bill.
	if sched != nil {
		before := clientRequests(w.client)
		w.clock.Advance(time.Second)
		if err := sched.Quiesce(ctx); err != nil {
			return nil, err
		}
		res.totalRequests += clientRequests(w.client) - before
	}
	if err := writer.Close(ctx); err != nil {
		return nil, err
	}

	// Steady-state latency: the same Zipf mix once every regime has
	// converged to its own final index state — full coverage for the
	// maintained specs, pure scans for scan_only and demoted columns.
	for q := 0; q < 3*queriesPerRound; q++ {
		lat, err := zipfQuery()
		if err != nil {
			return nil, err
		}
		res.steadyLats = append(res.steadyLats, lat)
	}

	// Hot-partition lag: files whose ts stats pin them to partition 0.
	snap, err := w.table.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	for _, f := range snap.Files {
		s, ok := f.Stats["ts"]
		if !ok || len(s.Min) == 0 || parquet.DecodeOrderableInt64(s.Min) != 0 {
			continue
		}
		if lag, ok := coveredLag[f.Path]; ok {
			res.hotLags = append(res.hotLags, lag)
		}
	}
	sort.Slice(res.hotLags, func(i, j int) bool { return res.hotLags[i] < res.hotLags[j] })

	for _, col := range adaptiveColdCols {
		cold, err := w.client.ListIndexes(ctx, col, component.KindFM)
		if err != nil {
			return nil, err
		}
		res.coldEntries += len(cold)
	}
	if sched != nil {
		reg := sched.Registry().Snapshot()
		res.maintRequests = reg.Counter("ingest.job_requests")
		res.jobsIndex = reg.Counter("ingest.jobs_index")
		res.jobsCompact = reg.Counter("ingest.jobs_compact")
		res.jobsVacuum = reg.Counter("ingest.jobs_vacuum")
	}
	return res, nil
}

// Adaptive runs the three regimes and prints the comparison table.
func Adaptive(o Options) (*AdaptiveResult, error) {
	res := &AdaptiveResult{
		Rounds:          o.scaleInt(8, 5),
		Partitions:      4,
		RowsPerBatch:    384,
		QueriesPerRound: 6,
	}
	out := o.out()
	run := func(mode adaptiveMode) (*adaptivePassResult, error) {
		return adaptivePass(o, res.Rounds, res.Partitions, res.RowsPerBatch, res.QueriesPerRound, mode)
	}
	ad, err := run(passAdaptive)
	if err != nil {
		return nil, err
	}
	all, err := run(passIndexAll)
	if err != nil {
		return nil, err
	}
	scan, err := run(passScan)
	if err != nil {
		return nil, err
	}

	res.AdaptiveMaintRequests = ad.maintRequests
	res.IndexAllMaintRequests = all.maintRequests
	if ad.maintRequests > 0 {
		res.MaintRequestReduction = float64(all.maintRequests) / float64(ad.maintRequests)
	}
	res.AdaptiveTotalRequests = ad.totalRequests
	res.IndexAllTotalRequests = all.totalRequests
	res.AdaptiveColdEntries = ad.coldEntries
	res.IndexAllColdEntries = all.coldEntries
	if n := len(ad.hotLags); n > 0 {
		res.AdaptiveHotLagP50 = percentile(ad.hotLags, 0.50)
		res.AdaptiveHotLagP99 = percentile(ad.hotLags, 0.99)
	}
	if n := len(all.hotLags); n > 0 {
		res.IndexAllHotLagP50 = percentile(all.hotLags, 0.50)
		res.IndexAllHotLagP99 = percentile(all.hotLags, 0.99)
	}
	res.AdaptiveQueryP50 = percentile(ad.steadyLats, 0.50)
	res.AdaptiveQueryP99 = percentile(ad.steadyLats, 0.99)
	res.IndexAllQueryP50 = percentile(all.steadyLats, 0.50)
	res.IndexAllQueryP99 = percentile(all.steadyLats, 0.99)
	res.ScanQueryP50 = percentile(scan.steadyLats, 0.50)
	res.ScanQueryP99 = percentile(scan.steadyLats, 0.99)
	res.AdaptiveStreamQueryP50 = percentile(ad.streamLats, 0.50)
	res.IndexAllStreamQueryP50 = percentile(all.streamLats, 0.50)

	fmt.Fprintf(out, "Workload-adaptive maintenance: %d rounds x %d partitions x %d rows, Zipf queries on partition 0\n",
		res.Rounds, res.Partitions, res.RowsPerBatch)
	fmt.Fprintf(out, "%-26s %12s %12s %12s\n", "", "adaptive", "index_all", "scan_only")
	fmt.Fprintf(out, "%-26s %12d %12d %12d\n", "job store-requests",
		res.AdaptiveMaintRequests, res.IndexAllMaintRequests, 0)
	fmt.Fprintf(out, "%-26s %12d %12d %12d\n", "incl. observation polling",
		res.AdaptiveTotalRequests, res.IndexAllTotalRequests, 0)
	fmt.Fprintf(out, "%-26s %12d %12d %12s\n", "cold-column index entries",
		res.AdaptiveColdEntries, res.IndexAllColdEntries, "-")
	fmt.Fprintf(out, "%-26s %5d/%2d/%2d %6d/%2d/%2d %12s\n", "jobs index/compact/vacuum",
		ad.jobsIndex, ad.jobsCompact, ad.jobsVacuum,
		all.jobsIndex, all.jobsCompact, all.jobsVacuum, "-")
	fmt.Fprintf(out, "%-26s %12v %12v %12s\n", "hot searchable-lag p50",
		res.AdaptiveHotLagP50.Round(time.Millisecond), res.IndexAllHotLagP50.Round(time.Millisecond), "-")
	fmt.Fprintf(out, "%-26s %12v %12v %12v\n", "steady query p50",
		res.AdaptiveQueryP50.Round(time.Millisecond), res.IndexAllQueryP50.Round(time.Millisecond),
		res.ScanQueryP50.Round(time.Millisecond))
	fmt.Fprintf(out, "%-26s %12v %12v %12v\n", "steady query p99",
		res.AdaptiveQueryP99.Round(time.Millisecond), res.IndexAllQueryP99.Round(time.Millisecond),
		res.ScanQueryP99.Round(time.Millisecond))
	fmt.Fprintf(out, "%-26s %12v %12v %12s\n", "mid-stream query p50",
		res.AdaptiveStreamQueryP50.Round(time.Millisecond), res.IndexAllStreamQueryP50.Round(time.Millisecond), "-")
	fmt.Fprintf(out, "maintenance-request reduction: %.1fx\n", res.MaintRequestReduction)
	return res, nil
}
