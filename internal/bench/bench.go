// Package bench implements the experiment runners that regenerate
// every figure of the paper's evaluation (Section VII) on the
// simulated substrate. Each runner builds the workload, executes the
// measured operations under virtual-time sessions, prints the same
// series the paper plots, and returns the numbers so tests can assert
// the shapes (who wins, where the knees and crossovers fall).
//
// Scale bridging follows Section VII-D2: per-unit costs are measured
// at laptop scale and extrapolated linearly to the paper's dataset
// sizes, except the post-compaction Rottnest query latency, which is
// size-insensitive.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"rottnest/internal/bruteforce"
	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// Paper-scale dataset sizes (bytes) used for linear extrapolation of
// the TCO parameters: the C4 substring corpus (304 GB compressed),
// the 2-billion-record hash workload, and SIFT-1B as float32.
const (
	PaperTextBytes   = 304e9
	PaperUUIDBytes   = 256e9
	PaperVectorBytes = 512e9
)

// Options tune an experiment run.
type Options struct {
	// Seed drives every generator.
	Seed int64
	// Quick shrinks workloads for CI/bench loops.
	Quick bool
	// Out receives the printed tables; nil discards them.
	Out io.Writer
	// Trace, when non-nil, collects one exemplar span tree per
	// labelled search site (see TraceLog); rottnest-bench -trace
	// writes the collected trees as JSON.
	Trace *TraceLog
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) scaleInt(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// world bundles one simulated deployment: clock, instrumented store,
// lake table, Rottnest client.
type world struct {
	clock   *simtime.VirtualClock
	store   objectstore.Store
	metrics *objectstore.Metrics
	table   *lake.Table
	client  *core.Client

	// trace/traceLabel make the next measured search record its span
	// tree (see traced in trace.go).
	trace      *TraceLog
	traceLabel string
}

// newWorld builds a deployment. Optional wraps are applied to the
// store chain above the instrumented layer (and below any cache), so
// experiments can interpose fault injection or retry layers that both
// the lake and the client traverse.
func newWorld(schema *parquet.Schema, cfg core.Config, wraps ...func(objectstore.Store) objectstore.Store) (*world, error) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	// Every layer — the metered latency model at the bottom, fault and
	// retry wraps in the middle, any shared cache on top — composes
	// through objectstore.NewStack, the one canonical code path for
	// store chains (per-shard budgets in internal/shard use it too).
	model := objectstore.DefaultS3Model()
	base := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &model,
		CacheBytes: -1,
	})
	metrics := base.Metrics
	store := base.Store
	for _, wrap := range wraps {
		store = wrap(store)
	}
	// When an experiment asks for a warm deployment, share one cache
	// between the lake and the client (NewClient joins it via
	// FindCached), so snapshot log reads are accelerated too.
	if cfg.CacheBytes > 0 {
		store = objectstore.NewStack(store, objectstore.StackOptions{
			CacheBytes:  cfg.CacheBytes,
			CoalesceGap: cfg.CoalesceGap,
		}).Store
	}
	table, err := lake.CreateWith(ctx, store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		return nil, err
	}
	if cfg.IndexDir == "" {
		cfg.IndexDir = "rottnest"
	}
	// Figure reproductions model the paper's uncached read path: every
	// GET pays the Figure 10a latency. Keep the client's read cache off
	// unless an experiment (e.g. CacheWarmth) asks for it explicitly —
	// and likewise the decoded-object and plan caches, which the Serve
	// experiment enables deliberately.
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = -1
	}
	if cfg.DecodedCacheBytes == 0 {
		cfg.DecodedCacheBytes = -1
	}
	if cfg.PlanCacheTTLVersions == 0 {
		cfg.PlanCacheTTLVersions = -1
	}
	// Probe batching memoizes index probes, which would change the GET
	// shapes the figures assert; experiments that measure coalescing
	// (Multi) opt in explicitly.
	if cfg.ProbeBatchBytes == 0 {
		cfg.ProbeBatchBytes = -1
	}
	cfg.Clock = clock
	return &world{
		clock:   clock,
		store:   store,
		metrics: metrics,
		table:   table,
		client:  core.NewClient(table, cfg),
	}, nil
}

// rawBytes returns the lake's current data footprint.
func (w *world) rawBytes(ctx context.Context) (int64, error) {
	snap, err := w.table.Snapshot(ctx)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range snap.Files {
		total += f.Size
	}
	return total, nil
}

// indexBytes sums the committed index file sizes.
func (w *world) indexBytes(ctx context.Context) (int64, error) {
	entries, err := w.client.Meta().List(ctx)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.SizeBytes
	}
	return total, nil
}

// searchLatency runs the query n times and returns the mean virtual
// latency.
func (w *world) searchLatency(ctx context.Context, queries []core.Query) (time.Duration, error) {
	var total time.Duration
	for i, q := range queries {
		sctx := simtime.With(ctx, simtime.NewSession())
		var (
			res *core.Result
			err error
		)
		if i == 0 && w.trace != nil {
			// Tracing does not perturb the measurement: spans read the
			// same session the plain path uses.
			var node *obs.Node
			res, node, err = w.client.Trace(sctx, q)
			w.trace.Record(w.traceLabel, node)
		} else {
			res, err = w.client.Search(sctx, q)
		}
		if err != nil {
			return 0, err
		}
		total += res.Stats.Latency
	}
	return total / time.Duration(len(queries)), nil
}

// timedOp measures an operation's cost as virtual IO latency plus
// real compute time (index builds are CPU-heavy: suffix arrays,
// k-means).
func timedOp(ctx context.Context, fn func(context.Context) error) (time.Duration, error) {
	session := simtime.NewSession()
	start := time.Now()
	err := fn(simtime.With(ctx, session))
	return session.Elapsed() + time.Since(start), err
}

// uuidWorld builds a UUID-search deployment: batches of 16-byte keys.
type uuidWorld struct {
	*world
	keys [][16]byte
}

var uuidSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
)

func newUUIDWorld(seed int64, batches, rowsPerBatch int, cfg core.Config, wraps ...func(objectstore.Store) objectstore.Store) (*uuidWorld, error) {
	ctx := context.Background()
	w, err := newWorld(uuidSchema, cfg, wraps...)
	if err != nil {
		return nil, err
	}
	gen := workload.NewUUIDGen(seed)
	uw := &uuidWorld{world: w}
	for b := 0; b < batches; b++ {
		ks := gen.Batch(rowsPerBatch)
		uw.keys = append(uw.keys, ks...)
		batch := parquet.NewBatch(uuidSchema)
		ids := make([][]byte, len(ks))
		for i := range ks {
			k := ks[i]
			ids[i] = k[:]
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: ids}
		if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 1024, PageBytes: 16 << 10}); err != nil {
			return nil, err
		}
	}
	return uw, nil
}

func (u *uuidWorld) queries(n int) []core.Query {
	qs := make([]core.Query, n)
	for i := range qs {
		k := u.keys[(i*7919)%len(u.keys)]
		qs[i] = core.Query{Column: "id", UUID: &k, K: 10, Snapshot: -1}
	}
	return qs
}

// textWorld builds a substring-search deployment.
type textWorld struct {
	*world
	needles []string
}

var textSchema = parquet.MustSchema(
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

func newTextWorld(seed int64, batches, docsPerBatch int, cfg core.Config) (*textWorld, error) {
	ctx := context.Background()
	w, err := newWorld(textSchema, cfg)
	if err != nil {
		return nil, err
	}
	gen := workload.NewTextGen(workload.DefaultTextConfig(seed))
	tw := &textWorld{world: w}
	for b := 0; b < batches; b++ {
		docs := gen.Docs(docsPerBatch)
		needle := fmt.Sprintf("Ndl%dXq", b)
		docs = workload.PlantNeedle(docs, needle, []int{docsPerBatch / 3, 2 * docsPerBatch / 3})
		tw.needles = append(tw.needles, needle)
		batch := parquet.NewBatch(textSchema)
		vals := make([][]byte, len(docs))
		for i, d := range docs {
			vals[i] = []byte(d)
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: vals}
		if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 32 << 10}); err != nil {
			return nil, err
		}
	}
	return tw, nil
}

func (t *textWorld) queries(n int) []core.Query {
	qs := make([]core.Query, n)
	for i := range qs {
		qs[i] = core.Query{Column: "body", Substring: []byte(t.needles[i%len(t.needles)]), K: 10, Snapshot: -1}
	}
	return qs
}

// vectorWorld builds an ANN deployment.
type vectorWorld struct {
	*world
	dim     int
	vecs    [][]float32
	queryVs [][]float32
}

func vectorSchema(dim int) *parquet.Schema {
	return parquet.MustSchema(
		parquet.Column{Name: "emb", Type: parquet.TypeFixedLenByteArray, TypeLen: 4 * dim},
	)
}

func newVectorWorld(seed int64, n, dim, nQueries int, cfg core.Config) (*vectorWorld, error) {
	return newVectorWorldSpread(seed, n, dim, nQueries, 64, 0.18, cfg)
}

// newVectorWorldSpread controls the mixture difficulty: more clusters
// and higher spread blur cell boundaries, so recall actually depends
// on nprobe/refine (as with real embedding distributions).
func newVectorWorldSpread(seed int64, n, dim, nQueries, clusters int, spread float64, cfg core.Config) (*vectorWorld, error) {
	ctx := context.Background()
	w, err := newWorld(vectorSchema(dim), cfg)
	if err != nil {
		return nil, err
	}
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: seed, Dim: dim, Clusters: clusters, Spread: spread})
	vw := &vectorWorld{world: w, dim: dim, vecs: gen.Batch(n), queryVs: gen.Queries(nQueries)}
	batch := parquet.NewBatch(vectorSchema(dim))
	vals := make([][]byte, n)
	for i, v := range vw.vecs {
		vals[i] = workload.Float32sToBytes(v)
	}
	batch.Cols[0] = parquet.ColumnValues{Bytes: vals}
	if _, err := w.table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 512, PageBytes: 64 << 10}); err != nil {
		return nil, err
	}
	return vw, nil
}

// recallAt measures mean recall@k and mean virtual latency at the
// given (nprobe, refine) setting.
func (v *vectorWorld) recallAt(ctx context.Context, k, nprobe, refine int) (float64, time.Duration, error) {
	var recallSum float64
	var latency time.Duration
	for qi, q := range v.queryVs {
		sctx := simtime.With(ctx, simtime.NewSession())
		query := core.Query{
			Column: "emb", Vector: q, K: k, NProbe: nprobe, Refine: refine, Snapshot: -1,
		}
		var (
			res *core.Result
			err error
		)
		if qi == 0 && v.trace != nil {
			var node *obs.Node
			res, node, err = v.client.Trace(sctx, query)
			v.trace.Record(v.traceLabel, node)
		} else {
			res, err = v.client.Search(sctx, query)
		}
		if err != nil {
			return 0, 0, err
		}
		got := make([]int, len(res.Matches))
		for i, m := range res.Matches {
			got[i] = int(m.Row)
		}
		recallSum += workload.Recall(got, workload.ExactNearest(v.vecs, q, k))
		latency += res.Stats.Latency
	}
	n := float64(len(v.queryVs))
	return recallSum / n, latency / time.Duration(len(v.queryVs)), nil
}

// bruteForceLatency runs one representative full-scan query on a
// W-worker cluster and returns its virtual latency. The modelled
// per-worker decode rate is sized so a single worker's scan takes
// ~2 minutes — fixing the work-to-overhead ratio to match a
// paper-scale dataset rather than the laptop-scale one actually
// stored, so the scaling curve's knee falls where the paper's does.
func bruteForceLatency(ctx context.Context, table *lake.Table, workers int, column string, pred func([]byte) bool) (time.Duration, error) {
	snap, err := table.Snapshot(ctx)
	if err != nil {
		return 0, err
	}
	var bytes int64
	for _, f := range snap.Files {
		bytes += f.Size
	}
	decodeBps := float64(bytes) / 120.0
	cluster := bruteforce.NewCluster(table, bruteforce.ClusterConfig{Workers: workers, DecodeBps: decodeBps})
	session := simtime.NewSession()
	_, report, err := cluster.Scan(simtime.With(ctx, session), -1, column, func(v []byte) (bool, float64) {
		return pred(v), 0
	})
	if err != nil {
		return 0, err
	}
	return report.Latency, nil
}

// indexAndCompact brings the (column, kind) index up to date and
// fully compacts it, returning the combined virtual+real build cost.
func (w *world) indexAndCompact(ctx context.Context, column string, kind component.Kind) (time.Duration, error) {
	return timedOp(ctx, func(ctx context.Context) error {
		if _, err := w.client.Index(ctx, column, kind); err != nil {
			return err
		}
		if _, err := w.client.Compact(ctx, column, kind, core.CompactOptions{}); err != nil {
			return err
		}
		_, err := w.client.Vacuum(ctx, core.VacuumOptions{})
		return err
	})
}
