package bench

import (
	"testing"

	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/postings"
	"rottnest/internal/trie"
	"rottnest/internal/workload"
)

// TestBuildBenchShapes runs the build experiment in quick mode and
// asserts the tentpole acceptance shape: SA-IS and the full FM
// pipeline are each at least 2x the retained seed implementations on
// 1 MB of text (quick mode keeps that stage at full size), and every
// throughput is positive.
func TestBuildBenchShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("build speedup ratios are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := IndexBuild(Options{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuffixArray.Speedup < 2 {
		t.Errorf("SA-IS speedup %.2fx, want >= 2x (sais %.1fms, oracle %.1fms)",
			res.SuffixArray.Speedup, res.SuffixArray.SAISMs, res.SuffixArray.OracleMs)
	}
	if res.FM.Speedup < 2 {
		t.Errorf("FM build speedup %.2fx, want >= 2x (new %.1fms, seed %.1fms)",
			res.FM.Speedup, res.FM.BuildMs, res.FM.ReferenceMs)
	}
	if res.Trie.RowsPerSec <= 0 || res.IVFPQ.RowsPerSec <= 0 {
		t.Errorf("non-positive direct build rate: trie %.0f, ivfpq %.0f",
			res.Trie.RowsPerSec, res.IVFPQ.RowsPerSec)
	}
	if len(res.EndToEnd) != 3 {
		t.Fatalf("expected 3 end-to-end measurements, got %d", len(res.EndToEnd))
	}
	for _, e := range res.EndToEnd {
		if e.RowsPerSec <= 0 {
			t.Errorf("%s: non-positive end-to-end rate", e.Kind)
		}
	}
}

func BenchmarkIndexBuildFM(b *testing.B) {
	text, starts, refs := buildText(5, 1<<20)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fmindex.Build(text, starts, refs, fmindex.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(text))/1e6/b.Elapsed().Seconds()*float64(b.N), "MB/s")
}

func BenchmarkIndexBuildTrie(b *testing.B) {
	const n = 100_000
	keys := workload.NewUUIDGen(5).Batch(n)
	refs := make([]postings.PageRef, n)
	for i := range refs {
		refs[i] = postings.PageRef{File: uint32(i / 1024), Page: uint32(i % 1024)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trie.Build(keys, refs, trie.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkIndexBuildIVFPQ(b *testing.B) {
	const n = 20_000
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 5, Dim: 32, Clusters: 64, Spread: 0.2}).Batch(n)
	refs := make([]postings.RowRef, n)
	for i := range refs {
		refs[i] = postings.RowRef{File: uint32(i % 4), Row: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ivfpq.Build(vecs, refs, ivfpq.BuildOptions{Seed: 5, NList: 64, KMeansIters: 8, TrainSample: 10_000}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
