package bench

import (
	"sync"

	"rottnest/internal/obs"
)

// TraceNode is one node of a recorded span tree (see obs.Node).
type TraceNode = obs.Node

// TraceLog collects one representative span tree per labelled search
// site across an experiment run, for rottnest-bench's -trace output.
// Recording is first-wins per label: experiments run the same query
// shape many times, and one exemplar tree per site is what a reader
// wants to look at.
type TraceLog struct {
	mu    sync.Mutex
	nodes map[string]*obs.Node
}

// NewTraceLog returns an empty log.
func NewTraceLog() *TraceLog {
	return &TraceLog{nodes: make(map[string]*obs.Node)}
}

// Record stores n under label unless the label is already taken.
// Nil receivers and nil nodes are ignored, so call sites need no
// guards.
func (l *TraceLog) Record(label string, n *obs.Node) {
	if l == nil || n == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nodes[label]; !ok {
		l.nodes[label] = n
	}
}

// Nodes returns a copy of the label → tree map.
func (l *TraceLog) Nodes() map[string]*obs.Node {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]*obs.Node, len(l.nodes))
	for k, v := range l.nodes {
		out[k] = v
	}
	return out
}

// traced marks the world so its next measured search records its span
// tree into log under label (no-op when log is nil).
func (w *world) traced(log *TraceLog, label string) {
	w.trace = log
	w.traceLabel = label
}
