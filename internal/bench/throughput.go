package bench

import (
	"context"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/simtime"
)

// ThroughputResult holds the Section VII-D3 analysis: the QPS each
// approach supports before hitting its bottleneck.
type ThroughputResult struct {
	// RequestsPerQuery is the measured GET count of one Rottnest
	// query per application.
	RequestsPerQuery map[string]int64
	// MaxQPS is the implied cap at S3's 5500 GET RPS per prefix.
	MaxQPS map[string]float64
	// QueriesFor10Months converts the cap into total queries over 10
	// months, for comparison with the phase diagrams.
	QueriesFor10Months map[string]float64
}

// Throughput reproduces the Section VII-D3 discussion: Rottnest and
// brute force are bottlenecked by S3's per-prefix GET rate (5500
// RPS). Measuring each application's requests per query gives the QPS
// cap, which the paper observes lands at 10-100 QPS — beyond the
// region where Rottnest beats the copy-data approach anyway, so the
// cap does not change any conclusion.
func Throughput(opts Options) (*ThroughputResult, error) {
	ctx := context.Background()
	out := opts.out()
	res := &ThroughputResult{
		RequestsPerQuery:   map[string]int64{},
		MaxQPS:             map[string]float64{},
		QueriesFor10Months: map[string]float64{},
	}

	uw, err := newUUIDWorld(opts.Seed+8, opts.scaleInt(16, 8), opts.scaleInt(20000, 8000), core.Config{})
	if err != nil {
		return nil, err
	}
	tw, err := newTextWorld(opts.Seed+9, opts.scaleInt(16, 8), opts.scaleInt(800, 300), core.Config{})
	if err != nil {
		return nil, err
	}
	vw, err := newVectorWorld(opts.Seed+10, opts.scaleInt(40000, 12000), 32, 4, core.Config{})
	if err != nil {
		return nil, err
	}

	type app struct {
		name    string
		world   *world
		column  string
		kind    component.Kind
		queries []core.Query
	}
	apps := []app{
		{"uuid", uw.world, "id", component.KindTrie, uw.queries(4)},
		{"substring", tw.world, "body", component.KindFM, tw.queries(4)},
		{"vector", vw.world, "emb", component.KindIVFPQ, []core.Query{
			{Column: "emb", Vector: vw.queryVs[0], K: 10, NProbe: 8, Snapshot: -1},
			{Column: "emb", Vector: vw.queryVs[1], K: 10, NProbe: 8, Snapshot: -1},
		}},
	}
	const rpsCap = 5500.0
	fmt.Fprintln(out, "# VII-D3: throughput limits from the per-prefix GET rate")
	fmt.Fprintf(out, "%-10s %-14s %-10s %-20s\n", "app", "GETs/query", "max QPS", "10-month capacity")
	for _, a := range apps {
		if _, err := a.world.indexAndCompact(ctx, a.column, a.kind); err != nil {
			return nil, err
		}
		before := a.world.metrics.Snapshot()
		for _, q := range a.queries {
			session := simtime.NewSession()
			if _, err := a.world.client.Search(simtime.With(ctx, session), q); err != nil {
				return nil, err
			}
		}
		delta := a.world.metrics.Snapshot().Sub(before)
		perQuery := (delta.Gets + delta.Lists + delta.Heads) / int64(len(a.queries))
		if perQuery < 1 {
			perQuery = 1
		}
		qps := rpsCap / float64(perQuery)
		tenMonths := qps * 3600 * 24 * 30 * 10
		res.RequestsPerQuery[a.name] = perQuery
		res.MaxQPS[a.name] = qps
		res.QueriesFor10Months[a.name] = tenMonths
		fmt.Fprintf(out, "%-10s %-14d %-10.0f %-20.1e\n", a.name, perQuery, qps, tenMonths)
	}
	fmt.Fprintln(out, "\n(the paper: caps of 10-100 QPS; at 10 QPS a 10-month horizon is 2.5e7 queries,")
	fmt.Fprintln(out, "already past the point where copy-data wins in Figures 7 and 9)")
	return res, nil
}
