package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ivfpq"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// CustomFormatResult compares Rottnest's in-situ Parquet refinement
// against an idealized custom columnar format (Section VII-C's
// LanceDB-cold-cache comparison).
type CustomFormatResult struct {
	// Per recall target: Rottnest latency vs custom-format latency.
	Targets  []float64
	Rottnest []time.Duration
	Custom   []time.Duration
}

// CustomFormatComparison reproduces the VII-C experiment: Rottnest
// queries Parquet pages (~hundreds of KB, decompressed per read); a
// custom format fetches exactly the candidate vectors' bytes
// (0.1-4 KB, no decompression). Because both read sizes sit in the
// flat, latency-bound region of the object-store curve, the custom
// format's advantage is marginal — the paper reports 2.09s vs 1.90s
// at recall 0.87 and similar at higher targets.
func CustomFormatComparison(opts Options) (*CustomFormatResult, error) {
	ctx := context.Background()
	out := opts.out()
	dim := 32
	n := opts.scaleInt(60000, 15000)
	vw, err := newVectorWorld(opts.Seed+4, n, dim, opts.scaleInt(20, 8), core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := vw.indexAndCompact(ctx, "emb", component.KindIVFPQ); err != nil {
		return nil, err
	}

	// The idealized custom format: one object holding the raw
	// vectors back to back, so candidate i is exactly bytes
	// [4*dim*i, 4*dim*(i+1)) — fetchable without decompression. The
	// same IVF-PQ index drives candidate generation.
	packed := make([]byte, 0, 4*dim*n)
	for _, v := range vw.vecs {
		packed = append(packed, workload.Float32sToBytes(v)...)
	}
	if err := vw.store.Put(ctx, "custom/vectors.bin", packed); err != nil {
		return nil, err
	}
	entries, err := vw.client.Meta().ListFor(ctx, "emb", component.KindIVFPQ)
	if err != nil {
		return nil, err
	}
	indexKey := entries[0].IndexKey

	// customSearch models a cold query against the custom-format
	// table: like LanceDB cold-cache mode it still resolves the
	// table version (manifest read) and opens the index from object
	// storage on every query, then probes and fetches exactly the
	// candidate rows' bytes.
	customSearch := func(ctx context.Context, q []float32, nprobe, refine, k int) error {
		// Resolve the table version and open the index concurrently,
		// mirroring the parallel planning of the Rottnest search path.
		var reader *component.Reader
		var snapErr, openErr error
		simtime.From(ctx).Parallel(
			func(s *simtime.Session) {
				_, snapErr = vw.table.Snapshot(simtime.With(ctx, s))
			},
			func(s *simtime.Session) {
				reader, openErr = component.Open(simtime.With(ctx, s), vw.store, indexKey, component.OpenOptions{})
			},
		)
		if snapErr != nil {
			return snapErr
		}
		if openErr != nil {
			return openErr
		}
		ivf, err := ivfpq.Open(ctx, reader)
		if err != nil {
			return err
		}
		cands, err := ivf.Search(ctx, q, nprobe, refine)
		if err != nil {
			return err
		}
		reqs := make([]objectstore.RangeRequest, len(cands))
		for i, c := range cands {
			reqs[i] = objectstore.RangeRequest{
				Key: "custom/vectors.bin", Offset: c.Ref.Row * int64(4*dim), Length: int64(4 * dim),
			}
		}
		raws, err := objectstore.FanGet(ctx, vw.store, reqs)
		if err != nil {
			return err
		}
		full := make([][]float32, len(cands))
		for i, raw := range raws {
			full[i] = workload.BytesToFloat32s(raw)
		}
		ivfpq.ExactRerank(q, cands, full, k)
		return nil
	}

	res := &CustomFormatResult{Targets: []float64{0.87, 0.92, 0.97}}
	settings := []struct{ nprobe, refine int }{{4, 60}, {8, 120}, {24, 320}}
	fmt.Fprintln(out, "# VII-C: Rottnest in-situ Parquet vs ideal custom format (cold)")
	fmt.Fprintf(out, "%-8s %-14s %-14s\n", "recall", "rottnest", "custom")
	for i, target := range res.Targets {
		s := settings[i]
		// Rottnest path: full search through the client.
		var rot time.Duration
		for _, q := range vw.queryVs {
			session := simtime.NewSession()
			if _, err := vw.client.Search(simtime.With(ctx, session), core.Query{
				Column: "emb", Vector: q, K: 10, NProbe: s.nprobe, Refine: s.refine, Snapshot: -1,
			}); err != nil {
				return nil, err
			}
			rot += session.Elapsed()
		}
		rot /= time.Duration(len(vw.queryVs))
		// Custom path: same probe, row-exact refinement fetches.
		var cus time.Duration
		for _, q := range vw.queryVs {
			session := simtime.NewSession()
			if err := customSearch(simtime.With(ctx, session), q, s.nprobe, s.refine, 10); err != nil {
				return nil, err
			}
			cus += session.Elapsed()
		}
		cus /= time.Duration(len(vw.queryVs))
		res.Rottnest = append(res.Rottnest, rot)
		res.Custom = append(res.Custom, cus)
		fmt.Fprintf(out, "%-8.2f %-14s %-14s\n", target,
			rot.Round(time.Millisecond), cus.Round(time.Millisecond))
	}
	return res, nil
}
