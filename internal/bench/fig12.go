package bench

import (
	"fmt"
	"math"

	"rottnest/internal/tco"
)

// Fig12Result holds the sensitivity analysis of Figure 12.
type Fig12Result struct {
	// Base are the vector-search (recall 0.92) parameters.
	Base tco.Params
	// Factors swept.
	Factors []float64
	// Window boundaries at 10 months per swept parameter and factor.
	CPQWindows [][2]float64
	ICWindows  [][2]float64
	CPMWindows [][2]float64
	// BreakEvens per ic_r factor (months at 3000 queries/month).
	ICBreakEvens []float64
}

// Fig12Sensitivity reproduces Figure 12: how the vector phase diagram
// (recall 0.92) shifts as cpq_r, ic_r, and the index storage premium
// (cpm_r - cpm_bf) are scaled. The paper's two observations:
//
//  1. cheaper queries push the copy-data boundary up (and leave the
//     brute-force boundary alone); a smaller index does the opposite;
//  2. cheaper indexing shortens the minimum worthwhile operating
//     time without moving the long-horizon boundaries.
func Fig12Sensitivity(opts Options) (*Fig12Result, error) {
	out := opts.out()
	fig9, err := Fig9VectorPhases(Options{Seed: opts.Seed, Quick: opts.Quick})
	if err != nil {
		return nil, err
	}
	var base tco.Params
	for _, p := range fig9.Points {
		if p.Target == 0.92 {
			base = p.Params
		}
	}
	res := &Fig12Result{Base: base, Factors: []float64{0.0625, 0.25, 1, 4, 16}}

	fmt.Fprintln(out, "\n# Fig 12: sensitivity of the recall-0.92 vector phase diagram")
	fmt.Fprintf(out, "%-10s %-24s %-24s %-24s\n", "factor", "cpq_r window@10mo", "ic_r window@10mo", "cpm_r window@10mo")
	for _, f := range res.Factors {
		pq := base
		pq.CPQRottnest *= f
		pic := base
		pic.ICRottnest *= f
		pcm := base
		pcm.CPMRottnest = base.CPMBruteForce + (base.CPMRottnest-base.CPMBruteForce)*f

		row := make([]string, 0, 3)
		for _, variant := range []struct {
			p    tco.Params
			dest *[][2]float64
		}{{pq, &res.CPQWindows}, {pic, &res.ICWindows}, {pcm, &res.CPMWindows}} {
			lo, hi, ok := variant.p.RottnestWindow(10)
			if !ok {
				*variant.dest = append(*variant.dest, [2]float64{math.NaN(), math.NaN()})
				row = append(row, "never wins")
				continue
			}
			*variant.dest = append(*variant.dest, [2]float64{lo, hi})
			row = append(row, fmt.Sprintf("%.1e..%.1e", lo, hi))
		}
		be, ok := pic.BreakEvenMonths(3000)
		if !ok {
			be = math.NaN()
		}
		res.ICBreakEvens = append(res.ICBreakEvens, be)
		fmt.Fprintf(out, "%-10.4g %-24s %-24s %-24s\n", f, row[0], row[1], row[2])
	}
	fmt.Fprintf(out, "break-even months at 3000 q/mo per ic_r factor: ")
	for i, be := range res.ICBreakEvens {
		fmt.Fprintf(out, "%gx=%.2f ", res.Factors[i], be)
	}
	fmt.Fprintln(out)
	return res, nil
}
