package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/postings"
	"rottnest/internal/trie"
	"rottnest/internal/workload"
)

// SAStageResult compares the SA-IS suffix-array builder against the
// retained prefix-doubling oracle on the same text.
type SAStageResult struct {
	TextBytes int     `json:"text_bytes"`
	SAISMs    float64 `json:"sais_ms"`
	OracleMs  float64 `json:"oracle_ms"`
	Speedup   float64 `json:"speedup"`
}

// FMStageResult compares the full FM build pipelines: SA-IS plus the
// parallel encode against the retained serial seed path. The two emit
// byte-identical files, so the speedup is pure build-path improvement.
type FMStageResult struct {
	TextBytes   int     `json:"text_bytes"`
	BuildMs     float64 `json:"build_ms"`
	ReferenceMs float64 `json:"reference_ms"`
	Speedup     float64 `json:"speedup"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// KindThroughput is a direct single-kind build rate measurement.
type KindThroughput struct {
	Rows       int     `json:"rows"`
	BuildMs    float64 `json:"build_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// EndToEndResult is the wall-clock rate of Client.Index — column scan,
// input assembly, index build, and upload — over a freshly ingested
// table.
type EndToEndResult struct {
	Kind       string  `json:"kind"`
	Rows       int     `json:"rows"`
	IndexMs    float64 `json:"index_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// BuildResult aggregates the build-path experiment, written to
// BENCH_build.json by `rottnest-bench build`.
type BuildResult struct {
	SuffixArray SAStageResult    `json:"suffix_array"`
	FM          FMStageResult    `json:"fm"`
	Trie        KindThroughput   `json:"trie"`
	IVFPQ       KindThroughput   `json:"ivfpq"`
	EndToEnd    []EndToEndResult `json:"end_to_end"`
}

// buildText generates ~size bytes of separator-joined workload text
// with a page boundary every 16 documents, shaped like the FM build's
// real input.
func buildText(seed int64, size int) ([]byte, []int64, []postings.PageRef) {
	gen := workload.NewTextGen(workload.DefaultTextConfig(seed))
	var text []byte
	var starts []int64
	var refs []postings.PageRef
	for i := 0; len(text) < size; i++ {
		if i%16 == 0 {
			starts = append(starts, int64(len(text)))
			refs = append(refs, postings.PageRef{File: 0, Page: uint32(len(refs))})
		}
		text = append(text, []byte(gen.Docs(1)[0])...)
		text = append(text, fmindex.Separator)
	}
	return text, starts, refs
}

// bestOf runs fn reps times and returns the fastest wall-clock run —
// the standard guard against scheduler noise when comparing two
// implementations on the same input.
func bestOf(reps int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// IndexBuild benchmarks the index-build fast path: SA-IS versus the
// prefix-doubling oracle, the full FM pipeline versus the retained
// serial seed path (byte-identical output), direct trie and IVF-PQ
// build rates, and end-to-end Client.Index throughput per index kind.
// The suffix-array and FM comparisons always run on a full 1 MB of
// text — -quick shrinks only the secondary measurements — because the
// ">= 2x on 1 MB" acceptance bar is measured here.
func IndexBuild(opts Options) (*BuildResult, error) {
	ctx := context.Background()
	out := opts.out()
	res := &BuildResult{}
	reps := opts.scaleInt(5, 3)

	// Stage 1: suffix array, SA-IS vs oracle.
	text, starts, refs := buildText(opts.Seed, 1<<20)
	full := append(append(make([]byte, 0, len(text)+1), text...), fmindex.Sentinel)
	fmindex.SuffixArray(full) // warm up
	fmindex.ReferenceSuffixArray(full)
	res.SuffixArray = SAStageResult{TextBytes: len(full)}
	res.SuffixArray.SAISMs = bestOf(reps, func() { fmindex.SuffixArray(full) })
	res.SuffixArray.OracleMs = bestOf(reps, func() { fmindex.ReferenceSuffixArray(full) })
	res.SuffixArray.Speedup = res.SuffixArray.OracleMs / res.SuffixArray.SAISMs
	fmt.Fprintf(out, "# build: suffix array, 1 MB text\nsais %.1fms  oracle %.1fms  speedup %.2fx\n",
		res.SuffixArray.SAISMs, res.SuffixArray.OracleMs, res.SuffixArray.Speedup)

	// Stage 2: full FM build, new pipeline vs retained seed path.
	fmOpts := fmindex.BuildOptions{}
	res.FM = FMStageResult{TextBytes: len(text)}
	res.FM.BuildMs = bestOf(reps, func() {
		if _, err := fmindex.Build(text, starts, refs, fmOpts); err != nil {
			panic(err)
		}
	})
	res.FM.ReferenceMs = bestOf(reps, func() {
		if _, err := fmindex.ReferenceBuild(text, starts, refs, fmOpts); err != nil {
			panic(err)
		}
	})
	res.FM.Speedup = res.FM.ReferenceMs / res.FM.BuildMs
	res.FM.MBPerSec = float64(len(text)) / (1 << 20) / (res.FM.BuildMs / 1000)
	fmt.Fprintf(out, "# build: full FM pipeline, 1 MB text\nnew %.1fms  seed %.1fms  speedup %.2fx  (%.1f MB/s)\n",
		res.FM.BuildMs, res.FM.ReferenceMs, res.FM.Speedup, res.FM.MBPerSec)

	// Stage 3: direct trie and IVF-PQ build rates.
	nKeys := opts.scaleInt(200_000, 50_000)
	keys := workload.NewUUIDGen(opts.Seed + 1).Batch(nKeys)
	keyRefs := make([]postings.PageRef, nKeys)
	for i := range keyRefs {
		keyRefs[i] = postings.PageRef{File: uint32(i / 1024), Page: uint32(i % 1024)}
	}
	res.Trie = KindThroughput{Rows: nKeys}
	res.Trie.BuildMs = bestOf(reps, func() {
		if _, err := trie.Build(keys, keyRefs, trie.BuildOptions{}); err != nil {
			panic(err)
		}
	})
	res.Trie.RowsPerSec = float64(nKeys) / (res.Trie.BuildMs / 1000)

	nVecs := opts.scaleInt(30_000, 8_000)
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: opts.Seed + 2, Dim: 32, Clusters: 64, Spread: 0.2}).Batch(nVecs)
	rowRefs := make([]postings.RowRef, nVecs)
	for i := range rowRefs {
		rowRefs[i] = postings.RowRef{File: uint32(i % 4), Row: int64(i)}
	}
	res.IVFPQ = KindThroughput{Rows: nVecs}
	res.IVFPQ.BuildMs = bestOf(reps, func() {
		if _, err := ivfpq.Build(vecs, rowRefs, ivfpq.BuildOptions{Seed: opts.Seed, NList: 64, KMeansIters: 8, TrainSample: 10_000}); err != nil {
			panic(err)
		}
	})
	res.IVFPQ.RowsPerSec = float64(nVecs) / (res.IVFPQ.BuildMs / 1000)
	fmt.Fprintf(out, "# build: direct index rates\ntrie  %d keys in %.1fms (%.0f rows/s)\nivfpq %d vecs in %.1fms (%.0f rows/s)\n",
		res.Trie.Rows, res.Trie.BuildMs, res.Trie.RowsPerSec,
		res.IVFPQ.Rows, res.IVFPQ.BuildMs, res.IVFPQ.RowsPerSec)

	// Stage 4: end-to-end Client.Index per kind (scan + assemble +
	// build + upload), real wall clock.
	fmt.Fprintf(out, "# build: end-to-end Client.Index\n")
	endToEnd := func(kind string, rows int, index func(ctx context.Context) error) error {
		start := time.Now()
		if err := index(ctx); err != nil {
			return err
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		e := EndToEndResult{Kind: kind, Rows: rows, IndexMs: ms, RowsPerSec: float64(rows) / (ms / 1000)}
		res.EndToEnd = append(res.EndToEnd, e)
		fmt.Fprintf(out, "%-6s %d rows in %.1fms (%.0f rows/s)\n", kind, rows, e.IndexMs, e.RowsPerSec)
		return nil
	}

	textRows := opts.scaleInt(4000, 1200)
	tw, err := newTextWorld(opts.Seed+3, 4, textRows/4, core.Config{})
	if err != nil {
		return nil, err
	}
	if err := endToEnd("fm", textRows, func(ctx context.Context) error {
		_, err := tw.client.Index(ctx, "body", component.KindFM)
		return err
	}); err != nil {
		return nil, err
	}

	uuidRows := opts.scaleInt(120_000, 30_000)
	uw, err := newUUIDWorld(opts.Seed+4, 4, uuidRows/4, core.Config{})
	if err != nil {
		return nil, err
	}
	if err := endToEnd("trie", uuidRows, func(ctx context.Context) error {
		_, err := uw.client.Index(ctx, "id", component.KindTrie)
		return err
	}); err != nil {
		return nil, err
	}

	vecRows := opts.scaleInt(30_000, 8_000)
	vw, err := newVectorWorld(opts.Seed+5, vecRows, 32, 1, core.Config{})
	if err != nil {
		return nil, err
	}
	if err := endToEnd("ivfpq", vecRows, func(ctx context.Context) error {
		_, err := vw.client.Index(ctx, "emb", component.KindIVFPQ)
		return err
	}); err != nil {
		return nil, err
	}
	return res, nil
}
