package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
	"rottnest/internal/trie"
	"rottnest/internal/workload"
)

// AblationResult holds the design-choice ablations of DESIGN.md §8.
type AblationResult struct {
	// Componentized vs whole-file-download trie lookups.
	ComponentizedLookup time.Duration
	WholeFileLookup     time.Duration
	// FM block-size sweep: block size -> (query latency, index bytes).
	FMBlockLatency map[int]time.Duration
	FMBlockBytes   map[int]int64
	// Trie leaf-component-size sweep.
	TrieComponentLatency map[int]time.Duration
	// PQ M sweep: M -> (recall@10, index bytes).
	PQRecall map[int]float64
	PQBytes  map[int]int64
	// Page-size sweep: page bytes -> probe latency.
	PageProbeLatency map[int]time.Duration
}

// Ablations measures the cost of Rottnest's individual design
// choices, the knobs Section V motivates:
//
//   - componentization vs downloading the whole index per query;
//   - FM-index BWT block size (rank granularity vs request count);
//   - trie leaf component size (transfer size vs request count);
//   - PQ subquantizer count M (accuracy vs index size);
//   - Parquet page size (probe transfer vs page count).
func Ablations(opts Options) (*AblationResult, error) {
	ctx := context.Background()
	out := opts.out()
	res := &AblationResult{
		FMBlockLatency:       map[int]time.Duration{},
		FMBlockBytes:         map[int]int64{},
		TrieComponentLatency: map[int]time.Duration{},
		PQRecall:             map[int]float64{},
		PQBytes:              map[int]int64{},
		PageProbeLatency:     map[int]time.Duration{},
	}
	clock := simtime.NewVirtualClock()
	model := objectstore.DefaultS3Model()
	store := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &model,
		CacheBytes: -1,
	}).Store

	// --- Componentization vs whole-file download (trie). ---
	// Large enough that the whole index is throughput-bound to
	// download while a single component stays latency-bound.
	nKeys := opts.scaleInt(6000000, 2500000)
	keys := workload.NewUUIDGen(opts.Seed).Batch(nKeys)
	refs := make([]postings.PageRef, nKeys)
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i / 1000)}
	}
	trieBytes, err := trie.Build(keys, refs, trie.BuildOptions{})
	if err != nil {
		return nil, err
	}
	if err := store.Put(ctx, "ab/trie.index", trieBytes); err != nil {
		return nil, err
	}
	measure := func(fn func(context.Context) error) (time.Duration, error) {
		session := simtime.NewSession()
		err := fn(simtime.With(ctx, session))
		return session.Elapsed(), err
	}
	res.ComponentizedLookup, err = measure(func(ctx context.Context) error {
		r, err := component.Open(ctx, store, "ab/trie.index", component.OpenOptions{})
		if err != nil {
			return err
		}
		ix, err := trie.Open(ctx, r)
		if err != nil {
			return err
		}
		_, err = ix.Lookup(ctx, keys[7])
		return err
	})
	if err != nil {
		return nil, err
	}
	res.WholeFileLookup, err = measure(func(ctx context.Context) error {
		// The serialize-the-whole-structure approach of Section V-B:
		// download and decompress everything, then query in memory.
		if _, err := store.Get(ctx, "ab/trie.index"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "# Ablation: componentization (trie, %.1f MB index)\n", float64(len(trieBytes))/1e6)
	fmt.Fprintf(out, "componentized lookup: %-10s whole-file download: %s\n\n",
		res.ComponentizedLookup.Round(time.Millisecond), res.WholeFileLookup.Round(time.Millisecond))

	// --- FM block size sweep. ---
	gen := workload.NewTextGen(workload.DefaultTextConfig(opts.Seed + 1))
	docs := workload.PlantNeedle(gen.Docs(opts.scaleInt(8000, 2500)), "AblationNdl", []int{100})
	var text []byte
	var starts []int64
	var pageRefs []postings.PageRef
	for i, d := range docs {
		if i%200 == 0 {
			starts = append(starts, int64(len(text)))
			pageRefs = append(pageRefs, postings.PageRef{Page: uint32(len(pageRefs))})
		}
		text = append(text, d...)
		text = append(text, fmindex.Separator)
	}
	fmt.Fprintf(out, "# Ablation: FM-index block size (%.1f MB text)\n", float64(len(text))/1e6)
	fmt.Fprintf(out, "%-12s %-14s %-12s\n", "block", "query", "index bytes")
	for _, block := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		data, err := fmindex.Build(text, starts, pageRefs, fmindex.BuildOptions{BlockSize: block})
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("ab/fm-%d.index", block)
		if err := store.Put(ctx, key, data); err != nil {
			return nil, err
		}
		lat, err := measure(func(ctx context.Context) error {
			r, err := component.Open(ctx, store, key, component.OpenOptions{})
			if err != nil {
				return err
			}
			ix, err := fmindex.Open(ctx, r)
			if err != nil {
				return err
			}
			_, err = ix.Lookup(ctx, []byte("AblationNdl"), 100)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.FMBlockLatency[block] = lat
		res.FMBlockBytes[block] = int64(len(data))
		fmt.Fprintf(out, "%-12s %-14s %-12d\n", byteSize(int64(block)), lat.Round(time.Millisecond), len(data))
	}
	fmt.Fprintln(out)

	// --- Trie leaf component size sweep. ---
	fmt.Fprintf(out, "# Ablation: trie leaf component size (%d keys)\n", nKeys)
	fmt.Fprintf(out, "%-12s %-14s\n", "component", "lookup")
	for _, target := range []int{16 << 10, 128 << 10, 1 << 20, 8 << 20} {
		data, err := trie.Build(keys, refs, trie.BuildOptions{TargetComponentBytes: target})
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("ab/trie-%d.index", target)
		if err := store.Put(ctx, key, data); err != nil {
			return nil, err
		}
		lat, err := measure(func(ctx context.Context) error {
			r, err := component.Open(ctx, store, key, component.OpenOptions{})
			if err != nil {
				return err
			}
			ix, err := trie.Open(ctx, r)
			if err != nil {
				return err
			}
			_, err = ix.Lookup(ctx, keys[12345])
			return err
		})
		if err != nil {
			return nil, err
		}
		res.TrieComponentLatency[target] = lat
		fmt.Fprintf(out, "%-12s %-14s\n", byteSize(int64(target)), lat.Round(time.Millisecond))
	}
	fmt.Fprintln(out)

	// --- PQ M sweep. ---
	vgen := workload.NewVectorGen(workload.VectorConfig{Seed: opts.Seed + 2, Dim: 32, Clusters: 256, Spread: 0.5})
	nv := opts.scaleInt(30000, 10000)
	vecs := vgen.Batch(nv)
	queries := vgen.Queries(opts.scaleInt(20, 10))
	rowRefs := make([]postings.RowRef, nv)
	for i := range rowRefs {
		rowRefs[i] = postings.RowRef{Row: int64(i)}
	}
	fmt.Fprintf(out, "# Ablation: PQ subquantizers M (dim 32, %d vectors)\n", nv)
	fmt.Fprintf(out, "%-6s %-12s %-12s %-12s\n", "M", "recall@10", "bytes/vec", "index bytes")
	for _, m := range []int{4, 8, 16} {
		data, err := ivfpq.Build(vecs, rowRefs, ivfpq.BuildOptions{M: m, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("ab/pq-%d.index", m)
		if err := store.Put(ctx, key, data); err != nil {
			return nil, err
		}
		r, err := component.Open(ctx, store, key, component.OpenOptions{})
		if err != nil {
			return nil, err
		}
		ix, err := ivfpq.Open(ctx, r)
		if err != nil {
			return nil, err
		}
		var recallSum float64
		for _, q := range queries {
			cands, err := ix.Search(ctx, q, 16, 10)
			if err != nil {
				return nil, err
			}
			got := make([]int, len(cands))
			for i, c := range cands {
				got[i] = int(c.Ref.Row)
			}
			recallSum += workload.Recall(got, workload.ExactNearest(vecs, q, 10))
		}
		recall := recallSum / float64(len(queries))
		res.PQRecall[m] = recall
		res.PQBytes[m] = int64(len(data))
		fmt.Fprintf(out, "%-6d %-12.3f %-12.1f %-12d\n", m, recall, float64(len(data))/float64(nv), len(data))
	}
	fmt.Fprintln(out)

	// --- Page size sweep: the raw in-situ probe cost (one page read
	// and decode), isolated from index query time. Pages up to ~1MB
	// sit in the flat latency region; beyond it each probe pays the
	// transfer — the exact trade Section V-A tunes with ~1MB pages.
	fmt.Fprintln(out, "# Ablation: Parquet page size (single-page in-situ probe)")
	fmt.Fprintf(out, "%-12s %-14s %-14s %-8s\n", "page target", "probe", "physical", "pages")
	uw2 := workload.NewTextGen(workload.DefaultTextConfig(opts.Seed + 3))
	probeDocs := uw2.Docs(opts.scaleInt(60000, 25000))
	batchVals := make([][]byte, len(probeDocs))
	for i, d := range probeDocs {
		batchVals[i] = []byte(d)
	}
	for _, pageBytes := range []int{64 << 10, 300 << 10, 1 << 20, 4 << 20, 16 << 20} {
		batch := parquet.NewBatch(textSchema)
		batch.Cols[0] = parquet.ColumnValues{Bytes: batchVals}
		key := fmt.Sprintf("ab/pages-%d.rpq", pageBytes)
		_, tables, err := parquet.WriteFile(ctx, store, key, batch, parquet.WriterOptions{
			PageBytes: pageBytes, RowGroupRows: len(probeDocs),
		})
		if err != nil {
			return nil, err
		}
		page := tables[0][len(tables[0])/2]
		lat, err := measure(func(ctx context.Context) error {
			_, err := parquet.ReadPages(ctx, store, key, textSchema.Columns[0], []parquet.PageInfo{page})
			return err
		})
		if err != nil {
			return nil, err
		}
		res.PageProbeLatency[pageBytes] = lat
		fmt.Fprintf(out, "%-12s %-14s %-14s %-8d\n",
			byteSize(int64(pageBytes)), lat.Round(time.Millisecond), byteSize(page.Size), len(tables[0]))
	}
	return res, nil
}
