package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objcache"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

// ServeWorkloadResult reports one workload's concurrent-serving
// comparison: N clients replaying a Zipf-distributed query stream
// against a fully cold deployment (every cache off, the paper's read
// path) and against a warm deployment (byte cache + decoded-object
// cache + plan cache, primed by one pass over the query universe).
type ServeWorkloadResult struct {
	Workload string `json:"workload"`
	Clients  int    `json:"clients"`
	// Queries is the total measured stream length across clients;
	// Universe is the number of distinct queries it draws from.
	Queries  int `json:"queries"`
	Universe int `json:"universe"`
	// Per-query virtual latency percentiles over the whole stream.
	ColdP50 time.Duration `json:"cold_p50_ns"`
	ColdP99 time.Duration `json:"cold_p99_ns"`
	WarmP50 time.Duration `json:"warm_p50_ns"`
	WarmP99 time.Duration `json:"warm_p99_ns"`
	// SpeedupP50 is ColdP50/WarmP50 — the headline warm-over-cold win.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
	// GETs issued per query over each measured pass.
	ColdGETsPerQuery float64 `json:"cold_gets_per_query"`
	WarmGETsPerQuery float64 `json:"warm_gets_per_query"`
	// QPS is queries / virtual makespan, where the makespan is the
	// slowest client's summed latency (clients run concurrently).
	ColdQPS float64 `json:"cold_qps"`
	WarmQPS float64 `json:"warm_qps"`
	// Decoded-cache and plan-cache activity over the measured warm
	// pass.
	DecodedHits   int64 `json:"decoded_hits"`
	DecodedMisses int64 `json:"decoded_misses"`
	PlanHits      int64 `json:"plan_hits"`
}

// ServeResult aggregates the serving experiment across workloads.
type ServeResult struct {
	Workloads []ServeWorkloadResult `json:"workloads"`
}

// servePass replays a Zipf stream with `clients` concurrent goroutines
// sharing one deployment. Each client draws its own deterministic Zipf
// rank sequence over the universe, runs each query under a fresh
// virtual-time session, and records its per-query latency. Returns all
// latencies, the GETs issued across the pass, and the virtual makespan
// (slowest client's summed latency).
func servePass(ctx context.Context, w *world, universe []core.Query, clients, perClient int, seed int64) ([]time.Duration, int64, time.Duration, error) {
	before := w.metrics.Snapshot()
	perClientLats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(universe)-1))
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				q := universe[zipf.Uint64()]
				res, err := w.client.Search(simtime.With(ctx, simtime.NewSession()), q)
				if err != nil {
					errs[c] = err
					return
				}
				lats = append(lats, res.Stats.Latency)
			}
			perClientLats[c] = lats
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	var all []time.Duration
	var makespan time.Duration
	for _, lats := range perClientLats {
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		if sum > makespan {
			makespan = sum
		}
		all = append(all, lats...)
	}
	return all, w.metrics.Snapshot().Sub(before).Gets, makespan, nil
}

// percentile returns the p-th percentile (0..1) of the latencies.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// serveWorkload runs one workload's cold and warm serving passes.
// build constructs the deployment under the given config and returns
// the distinct query universe.
func serveWorkload(ctx context.Context, name string, o Options, clients, perClient int, build func(cfg core.Config) (*world, []core.Query, error)) (ServeWorkloadResult, error) {
	r := ServeWorkloadResult{Workload: name, Clients: clients, Queries: clients * perClient}

	// Cold: every cache off — each query pays the full planning LIST,
	// directory/manifest/header GETs, and page reads.
	cold, universe, err := build(core.Config{CacheBytes: -1, DecodedCacheBytes: -1, PlanCacheTTLVersions: -1})
	if err != nil {
		return r, err
	}
	r.Universe = len(universe)
	coldLats, coldGets, coldSpan, err := servePass(ctx, cold, universe, clients, perClient, o.Seed)
	if err != nil {
		return r, err
	}

	// Warm: byte cache + decoded-object cache + plan cache, primed by
	// one single-threaded pass over the universe.
	warm, universe, err := build(core.Config{
		CacheBytes:           objectstore.DefaultCacheBytes,
		DecodedCacheBytes:    objcache.DefaultMaxBytes,
		PlanCacheTTLVersions: 8,
	})
	if err != nil {
		return r, err
	}
	for _, q := range universe {
		if _, err := warm.client.Search(simtime.With(ctx, simtime.NewSession()), q); err != nil {
			return r, err
		}
	}
	primed := warm.client.Metrics()
	warmLats, warmGets, warmSpan, err := servePass(ctx, warm, universe, clients, perClient, o.Seed)
	if err != nil {
		return r, err
	}
	delta := warm.client.Metrics().Sub(primed)

	// A fully warm query can cost exactly zero virtual time (pure
	// in-memory plan + decoded-object + byte-cache hits). Floor the
	// warm side at 1µs so ratios stay finite and JSON-encodable.
	const floor = time.Microsecond
	r.ColdP50 = percentile(coldLats, 0.50)
	r.ColdP99 = percentile(coldLats, 0.99)
	r.WarmP50 = percentile(warmLats, 0.50)
	r.WarmP99 = percentile(warmLats, 0.99)
	r.SpeedupP50 = float64(r.ColdP50) / float64(max(r.WarmP50, floor))
	r.SpeedupP99 = float64(r.ColdP99) / float64(max(r.WarmP99, floor))
	n := float64(len(coldLats))
	r.ColdGETsPerQuery = float64(coldGets) / n
	r.WarmGETsPerQuery = float64(warmGets) / n
	r.ColdQPS = n * float64(time.Second) / float64(max(coldSpan, floor))
	r.WarmQPS = n * float64(time.Second) / float64(max(warmSpan, floor))
	r.DecodedHits = delta.Counter("objcache.hits")
	r.DecodedMisses = delta.Counter("objcache.misses")
	r.PlanHits = delta.Counter("search.plan_cache_hits")
	return r, nil
}

// Serve measures the warm serving path end to end: N concurrent
// clients replay a Zipf-distributed query mix against one shared
// deployment, cold (all caches off — the paper's read path, where
// every query pays the planning LIST and every index open refetches
// directories, manifests, and headers) versus warm (version-keyed
// decoded-object cache + plan cache + byte cache, primed once). The
// warm path should collapse repeat queries to pure in-memory plan +
// decoded-object hits: zero GETs and near-zero virtual latency.
func Serve(o Options) (*ServeResult, error) {
	ctx := context.Background()
	out := o.out()
	res := &ServeResult{}

	clients := o.scaleInt(8, 4)
	perClient := o.scaleInt(64, 24)

	uuid, err := serveWorkload(ctx, "uuid", o, clients, perClient, func(cfg core.Config) (*world, []core.Query, error) {
		uw, err := newUUIDWorld(o.Seed, o.scaleInt(8, 3), o.scaleInt(2000, 600), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := uw.indexAndCompact(ctx, "id", component.KindTrie); err != nil {
			return nil, nil, err
		}
		return uw.world, uw.queries(o.scaleInt(48, 16)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, uuid)

	text, err := serveWorkload(ctx, "substring", o, clients, perClient, func(cfg core.Config) (*world, []core.Query, error) {
		tw, err := newTextWorld(o.Seed, o.scaleInt(6, 3), o.scaleInt(400, 150), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := tw.indexAndCompact(ctx, "body", component.KindFM); err != nil {
			return nil, nil, err
		}
		return tw.world, tw.queries(o.scaleInt(24, 9)), nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, text)

	vector, err := serveWorkload(ctx, "vector", o, clients, perClient, func(cfg core.Config) (*world, []core.Query, error) {
		vw, err := newVectorWorld(o.Seed, o.scaleInt(6000, 2000), 16, o.scaleInt(24, 8), cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := vw.indexAndCompact(ctx, "emb", component.KindIVFPQ); err != nil {
			return nil, nil, err
		}
		qs := make([]core.Query, len(vw.queryVs))
		for i, qv := range vw.queryVs {
			qs[i] = core.Query{Column: "emb", Vector: qv, K: 10, NProbe: 4, Refine: 2, Snapshot: -1}
		}
		return vw.world, qs, nil
	})
	if err != nil {
		return nil, err
	}
	res.Workloads = append(res.Workloads, vector)

	fmt.Fprintf(out, "Warm serving path: %d concurrent clients, Zipf query mix\n", clients)
	fmt.Fprintf(out, "%-10s %8s %9s %9s %9s %9s %8s %8s %8s %9s %9s\n",
		"workload", "queries", "cold_p50", "cold_p99", "warm_p50", "warm_p99", "spd_p50", "GETs/q_c", "GETs/q_w", "cold_QPS", "warm_QPS")
	for _, w := range res.Workloads {
		fmt.Fprintf(out, "%-10s %8d %9v %9v %9v %9v %7.1fx %8.1f %8.2f %9.1f %9.1f\n",
			w.Workload, w.Queries,
			w.ColdP50.Round(time.Microsecond), w.ColdP99.Round(time.Microsecond),
			w.WarmP50.Round(time.Microsecond), w.WarmP99.Round(time.Microsecond),
			w.SpeedupP50, w.ColdGETsPerQuery, w.WarmGETsPerQuery, w.ColdQPS, w.WarmQPS)
	}
	return res, nil
}
