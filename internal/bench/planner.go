package bench

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ivfpq"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// PlannerSuperwalkResult compares one multi-pattern FM superwalk (an
// OR of distinct substring predicates probed as a single coordinated
// backward search) against running the same patterns as singleton
// walks. The superwalk deduplicates occ checkpoint-block fetches
// across patterns per step, so it must fetch measurably fewer blocks.
type PlannerSuperwalkResult struct {
	Patterns int `json:"patterns"`
	Queries  int `json:"queries"`
	// Occ checkpoint-block fetches per query (search.occ_fetched).
	BatchedOccFetches   float64 `json:"batched_occ_fetches"`
	SingletonOccFetches float64 `json:"singleton_occ_fetches"`
	// Blocks the superwalk reused across patterns instead of
	// refetching, per query.
	OccReused float64 `json:"occ_reused"`
	// FetchSavings is SingletonOccFetches/BatchedOccFetches — the
	// headline win (>= 1.5x expected for an 8-pattern batch).
	FetchSavings float64 `json:"fetch_savings"`
	// Store GETs per query, for the end-to-end view.
	BatchedGETs   float64       `json:"batched_gets"`
	SingletonGETs float64       `json:"singleton_gets"`
	BatchedP50    time.Duration `json:"batched_p50_ns"`
	SingletonP50  time.Duration `json:"singleton_p50_ns"`
}

// PlannerOrderingResult measures cost-based AND staging on a
// point-lookup-miss workload: AND(uuid = absent key, substring =
// needle). The ordered executor probes the cheap trie leaf first,
// sees the intersection die, and never walks the FM index; the
// ordering-disabled executor probes everything.
type PlannerOrderingResult struct {
	Queries        int     `json:"queries"`
	ShortCircuited int     `json:"short_circuited"`
	LeavesSkipped  float64 `json:"leaves_skipped"`
	OrderedGETs    float64 `json:"ordered_gets"`
	UnorderedGETs  float64 `json:"unordered_gets"`
	// GETSavings is UnorderedGETs/OrderedGETs.
	GETSavings   float64       `json:"get_savings"`
	OrderedP50   time.Duration `json:"ordered_p50_ns"`
	UnorderedP50 time.Duration `json:"unordered_p50_ns"`
	// Virtual-time throughput, gated against regression by benchgate.
	OrderedQPS   float64 `json:"ordered_qps"`
	UnorderedQPS float64 `json:"unordered_qps"`
}

// PlannerADCResult times the IVF-PQ list scan's ADC table-gather
// kernel in isolation (in-memory store, wall clock). The ADC-versus-
// decode comparison lives in BenchmarkPQScanADC; this records the
// absolute scan rate so the JSON captures the kernel's ballpark.
type PlannerADCResult struct {
	Vectors int `json:"vectors"`
	Queries int `json:"queries"`
	// ScansPerSec is wall-clock Search calls per second (nprobe 16,
	// 200 candidates); machine-dependent, so not regression-gated.
	ScansPerSec float64       `json:"scans_per_sec"`
	ScanP50     time.Duration `json:"scan_p50_ns"`
}

// PlannerResult aggregates the probe-side fast-path experiment.
type PlannerResult struct {
	Superwalk PlannerSuperwalkResult `json:"superwalk"`
	Ordering  PlannerOrderingResult  `json:"ordering"`
	ADC       PlannerADCResult       `json:"adc"`
}

// Planner measures the probe-side fast path: (1) the multi-pattern FM
// superwalk versus singleton walks — occ checkpoint-block fetches per
// query; (2) cost-based AND ordering with short-circuit versus the
// unordered executor — GETs and skipped probes on a lookup-miss
// workload; (3) the ADC list-scan rate.
func Planner(o Options) (*PlannerResult, error) {
	ctx := context.Background()
	out := o.out()
	res := &PlannerResult{}

	// Eight distinct patterns per batch, matching the superwalk's
	// target workload; each batch plants its own needle.
	const patterns = 8
	rounds := o.scaleInt(12, 6)
	rowsPerBatch := o.scaleInt(2000, 600)

	// --- Superwalk: one OR probe vs singleton searches. ---
	mw, err := newMultiWorld(o.Seed, patterns, rowsPerBatch, core.Config{})
	if err != nil {
		return nil, err
	}
	sw := &res.Superwalk
	sw.Patterns = patterns
	sw.Queries = rounds
	preds := make([]*core.Expr, patterns)
	for i, needle := range mw.needles {
		preds[i] = core.PredSubstring("body", []byte(needle))
	}
	var batchedLats, singletonLats []time.Duration
	for r := 0; r < rounds; r++ {
		beforeReg := mw.client.Metrics()
		before := mw.metrics.Snapshot()
		cres, err := mw.client.SearchCompound(simtime.With(ctx, simtime.NewSession()), core.CompoundQuery{
			Expr: core.Or(preds...), K: 0, Snapshot: -1, Output: "body",
		})
		if err != nil {
			return nil, err
		}
		if len(cres.Matches) == 0 {
			return nil, fmt.Errorf("bench planner: superwalk round %d found nothing", r)
		}
		delta := mw.client.Metrics().Sub(beforeReg)
		sw.BatchedOccFetches += float64(delta.Counter("search.occ_fetched"))
		sw.OccReused += float64(delta.Counter("search.occ_reused"))
		sw.BatchedGETs += float64(mw.metrics.Snapshot().Sub(before).Gets)
		batchedLats = append(batchedLats, cres.Stats.Latency)

		beforeReg = mw.client.Metrics()
		before = mw.metrics.Snapshot()
		var total time.Duration
		for _, needle := range mw.needles {
			sres, err := mw.client.Search(simtime.With(ctx, simtime.NewSession()), core.Query{
				Column: "body", Substring: []byte(needle), K: 0, Snapshot: -1,
			})
			if err != nil {
				return nil, err
			}
			total += sres.Stats.Latency
		}
		delta = mw.client.Metrics().Sub(beforeReg)
		sw.SingletonOccFetches += float64(delta.Counter("search.occ_fetched"))
		sw.SingletonGETs += float64(mw.metrics.Snapshot().Sub(before).Gets)
		singletonLats = append(singletonLats, total)
	}
	n := float64(rounds)
	sw.BatchedOccFetches /= n
	sw.SingletonOccFetches /= n
	sw.OccReused /= n
	sw.BatchedGETs /= n
	sw.SingletonGETs /= n
	if sw.BatchedOccFetches > 0 {
		sw.FetchSavings = sw.SingletonOccFetches / sw.BatchedOccFetches
	}
	sw.BatchedP50 = percentile(batchedLats, 0.50)
	sw.SingletonP50 = percentile(singletonLats, 0.50)

	// --- Ordering: lookup-miss AND, staged vs unordered. ---
	ow, err := newMultiWorld(o.Seed+1, patterns, rowsPerBatch, core.Config{})
	if err != nil {
		return nil, err
	}
	unordered := core.NewClient(ow.table, core.Config{
		Clock: ow.clock, IndexDir: "rottnest", CacheBytes: -1,
		DecodedCacheBytes: -1, PlanCacheTTLVersions: -1, ProbeBatchBytes: -1,
		DisableANDOrdering: true,
	})
	or := &res.Ordering
	or.Queries = rounds
	missGen := workload.NewUUIDGen(o.Seed + 7919)
	var orderedLats, unorderedLats []time.Duration
	var orderedVirtual, unorderedVirtual time.Duration
	for r := 0; r < rounds; r++ {
		// A key the lake has never seen: the trie stage comes back
		// empty and the FM walk should be skipped.
		miss := missGen.Batch(1)[0]
		needle := mw.needles[r%len(mw.needles)]
		cq := core.CompoundQuery{
			Expr: core.And(
				core.PredUUID("id", miss),
				core.PredSubstring("body", []byte(needle)),
			),
			K: 0, Snapshot: -1, Output: "body",
		}
		beforeReg := ow.client.Metrics()
		before := ow.metrics.Snapshot()
		cres, err := ow.client.SearchCompound(simtime.With(ctx, simtime.NewSession()), cq)
		if err != nil {
			return nil, err
		}
		if len(cres.Matches) != 0 {
			return nil, fmt.Errorf("bench planner: miss query %d found matches", r)
		}
		if cres.Stats.ShortCircuited {
			or.ShortCircuited++
		}
		or.LeavesSkipped += float64(ow.client.Metrics().Sub(beforeReg).Counter("search.leaves_skipped"))
		or.OrderedGETs += float64(ow.metrics.Snapshot().Sub(before).Gets)
		orderedLats = append(orderedLats, cres.Stats.Latency)
		orderedVirtual += cres.Stats.Latency

		before = ow.metrics.Snapshot()
		ures, err := unordered.SearchCompound(simtime.With(ctx, simtime.NewSession()), cq)
		if err != nil {
			return nil, err
		}
		if len(ures.Matches) != 0 {
			return nil, fmt.Errorf("bench planner: unordered miss query %d found matches", r)
		}
		or.UnorderedGETs += float64(ow.metrics.Snapshot().Sub(before).Gets)
		unorderedLats = append(unorderedLats, ures.Stats.Latency)
		unorderedVirtual += ures.Stats.Latency
	}
	or.LeavesSkipped /= n
	or.OrderedGETs /= n
	or.UnorderedGETs /= n
	if or.OrderedGETs > 0 {
		or.GETSavings = or.UnorderedGETs / or.OrderedGETs
	}
	or.OrderedP50 = percentile(orderedLats, 0.50)
	or.UnorderedP50 = percentile(unorderedLats, 0.50)
	if orderedVirtual > 0 {
		or.OrderedQPS = float64(rounds) / orderedVirtual.Seconds()
	}
	if unorderedVirtual > 0 {
		or.UnorderedQPS = float64(rounds) / unorderedVirtual.Seconds()
	}

	// --- ADC: list-scan rate on an in-memory index, wall clock. ---
	nVec := o.scaleInt(20000, 5000)
	nQ := o.scaleInt(64, 16)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: o.Seed + 2, Dim: 64, Clusters: 32})
	vecs := gen.Batch(nVec)
	refs := make([]postings.RowRef, nVec)
	for i := range refs {
		refs[i] = postings.RowRef{File: 0, Row: int64(i)}
	}
	data, err := ivfpq.Build(vecs, refs, ivfpq.BuildOptions{NList: 64, M: 8, Seed: o.Seed + 3})
	if err != nil {
		return nil, err
	}
	store := objectstore.NewMemStore(nil)
	if err := store.Put(ctx, "v.index", data); err != nil {
		return nil, err
	}
	vr, err := component.Open(ctx, store, "v.index", component.OpenOptions{})
	if err != nil {
		return nil, err
	}
	ix, err := ivfpq.Open(ctx, vr)
	if err != nil {
		return nil, err
	}
	queries := gen.Queries(nQ)
	adc := &res.ADC
	adc.Vectors = nVec
	adc.Queries = nQ
	scanLats := make([]time.Duration, 0, nQ)
	start := time.Now()
	for _, q := range queries {
		t0 := time.Now()
		if _, err := ix.Search(ctx, q, 16, 200); err != nil {
			return nil, err
		}
		scanLats = append(scanLats, time.Since(t0))
	}
	if wall := time.Since(start); wall > 0 {
		adc.ScansPerSec = float64(nQ) / wall.Seconds()
	}
	adc.ScanP50 = percentile(scanLats, 0.50)

	fmt.Fprintf(out, "FM superwalk (%d patterns x %d rounds):\n", sw.Patterns, sw.Queries)
	fmt.Fprintf(out, "  occ fetches/query  batched %.1f vs singleton %.1f (%.2fx fewer), %.1f reused\n",
		sw.BatchedOccFetches, sw.SingletonOccFetches, sw.FetchSavings, sw.OccReused)
	fmt.Fprintf(out, "  GETs/query         batched %.1f vs singleton %.1f\n", sw.BatchedGETs, sw.SingletonGETs)
	fmt.Fprintf(out, "  p50 latency        batched %v vs singleton %v\n",
		sw.BatchedP50.Round(time.Microsecond), sw.SingletonP50.Round(time.Microsecond))
	fmt.Fprintf(out, "Cost-based AND ordering (%d lookup-miss queries):\n", or.Queries)
	fmt.Fprintf(out, "  short-circuited    %d/%d, %.1f leaves skipped/query\n",
		or.ShortCircuited, or.Queries, or.LeavesSkipped)
	fmt.Fprintf(out, "  GETs/query         ordered %.1f vs unordered %.1f (%.2fx fewer)\n",
		or.OrderedGETs, or.UnorderedGETs, or.GETSavings)
	fmt.Fprintf(out, "  p50 latency        ordered %v vs unordered %v (%.1f vs %.1f qps)\n",
		or.OrderedP50.Round(time.Microsecond), or.UnorderedP50.Round(time.Microsecond),
		or.OrderedQPS, or.UnorderedQPS)
	fmt.Fprintf(out, "ADC list scan (%d vectors, nprobe 16):\n", adc.Vectors)
	fmt.Fprintf(out, "  %.0f scans/sec, p50 %v (ADC-vs-decode: see BenchmarkPQScanADC)\n",
		adc.ScansPerSec, adc.ScanP50.Round(time.Microsecond))
	return res, nil
}
