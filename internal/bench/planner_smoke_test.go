package bench

import "testing"

// TestPlannerShapes asserts the probe-side fast path's headline
// shapes: the 8-pattern superwalk fetches at least 1.5x fewer occ
// checkpoint blocks than singleton walks, every lookup-miss AND
// short-circuits its FM probe, and the staged executor issues fewer
// GETs. Skipped under the race detector (bench workloads are sized
// for timing, not instrumentation overhead).
func TestPlannerShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("bench shapes are not asserted under -race")
	}
	res, err := Planner(Options{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Superwalk.FetchSavings < 1.5 {
		t.Errorf("superwalk fetch savings %.2fx, want >= 1.5x (batched %.1f vs singleton %.1f)",
			res.Superwalk.FetchSavings, res.Superwalk.BatchedOccFetches, res.Superwalk.SingletonOccFetches)
	}
	if res.Superwalk.OccReused == 0 {
		t.Error("superwalk reused no occ blocks")
	}
	if res.Ordering.ShortCircuited != res.Ordering.Queries {
		t.Errorf("short-circuited %d of %d lookup-miss queries, want all",
			res.Ordering.ShortCircuited, res.Ordering.Queries)
	}
	if res.Ordering.LeavesSkipped == 0 {
		t.Error("ordering skipped no leaves")
	}
	if res.Ordering.OrderedGETs >= res.Ordering.UnorderedGETs {
		t.Errorf("ordered GETs %.1f not below unordered %.1f",
			res.Ordering.OrderedGETs, res.Ordering.UnorderedGETs)
	}
	if res.ADC.ScansPerSec <= 0 {
		t.Error("ADC scan rate not measured")
	}
}
