GO ?= go

.PHONY: build test check fuzz-smoke trace-smoke bench-cache bench-build bench-serve bench-multi bench-sharded bench-planner bench-ingest bench-adaptive benchgate vulncheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the PR gate: vet, formatting, the race detector over every
# package, and a short fuzz pass over the byte-level decoders. The
# experiment shape tests in internal/bench and the build-speed shape
# tests in internal/fmindex skip themselves under -race (their
# thresholds mix in real wall-clock CPU time, which race
# instrumentation inflates), so they get a separate plain run.
check:
	$(GO) vet ./...
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./...
	$(GO) test ./internal/bench/ ./internal/fmindex/
	$(MAKE) trace-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) bench-multi
	$(MAKE) bench-sharded
	$(MAKE) bench-planner
	$(MAKE) bench-ingest
	$(MAKE) bench-adaptive
	$(MAKE) benchgate
	$(MAKE) vulncheck

# fuzz-smoke runs each fuzz target briefly (native Go fuzzing allows
# one -fuzz pattern per package invocation): corrupted bytes must
# error, never panic, and the SA-IS builder must agree with its
# prefix-doubling oracle. -run pins each invocation to its own seed
# corpus: fuzz builds carry coverage instrumentation, which would skew
# the timing-sensitive shape tests (they run uninstrumented above).
fuzz-smoke:
	$(GO) test -fuzz=FuzzTrieNodeDecode -run '^FuzzTrieNodeDecode$$' -fuzztime=10s ./internal/trie/
	$(GO) test -fuzz=FuzzPageDecode -run '^FuzzPageDecode$$' -fuzztime=10s ./internal/parquet/
	$(GO) test -fuzz=FuzzFMIndexOpen -run '^FuzzFMIndexOpen$$' -fuzztime=10s ./internal/fmindex/
	$(GO) test -fuzz=FuzzSuffixArray -run '^FuzzSuffixArray$$' -fuzztime=10s ./internal/fmindex/
	$(GO) test -fuzz=FuzzObjCache -run '^FuzzObjCache$$' -fuzztime=10s ./internal/objcache/
	$(GO) test -fuzz=FuzzPredicateParser -run '^FuzzPredicateParser$$' -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzShardMerge -run '^FuzzShardMerge$$' -fuzztime=10s ./internal/shard/
	$(GO) test -fuzz=FuzzFMSuperwalk -run '^FuzzFMSuperwalk$$' -fuzztime=10s ./internal/fmindex/
	$(GO) test -fuzz=FuzzHeatLedger -run '^FuzzHeatLedger$$' -fuzztime=10s ./internal/adaptive/

# trace-smoke proves the observability path end to end: quickstart
# runs every lookup through Client.Trace, writes the span trees as
# JSON, and self-verifies them (parse-back, phase presence, phase
# virtual durations summing exactly to the reported latency). A
# failure exits nonzero and fails check.
trace-smoke:
	@tmp="$$(mktemp trace-smoke.XXXXXX.json)"; \
	$(GO) run ./examples/quickstart -trace "$$tmp" >/dev/null; rc=$$?; \
	rm -f "$$tmp"; \
	if [ $$rc -ne 0 ]; then echo "trace-smoke failed"; exit $$rc; fi; \
	echo "trace-smoke ok"

# bench-cache records the read-cache warm-vs-cold experiment.
bench-cache:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_cache.json cache

# bench-build records the index-build fast-path experiment: SA-IS vs
# the prefix-doubling oracle and per-kind build throughput.
bench-build:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_build.json build

# bench-serve records the warm-serving-path experiment: concurrent
# clients over a Zipf query mix, cold vs warm p50/p99, GETs/query, QPS.
bench-serve:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_serve.json serve

# bench-multi records the multi-predicate planner experiment: compound
# AND plans vs separate searches (GETs, pages, pages pruned by the
# page-set intersection) and shared-probe batching (probe runs
# coalesced vs independent under a concurrent Zipf stream).
bench-multi:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_multi.json multi

# bench-sharded records the scatter-gather serving experiment:
# aggregate QPS vs shard count, and hedged-request p50/p99 against a
# latency-spiked replica at the same N x M x K point.
bench-sharded:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_sharded.json sharded

# bench-planner records the probe-side fast-path experiment: FM
# superwalk occ-fetch dedup vs singleton walks, cost-based AND
# short-circuit GET savings, and the ADC list-scan rate.
bench-planner:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_planner.json planner

# bench-ingest records the continuous-ingestion experiment: the
# group-commit writer's conditional-PUT amortization over per-batch
# appends and searchable-lag percentiles under the budgeted scheduler.
bench-ingest:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_ingest.json ingest

# bench-adaptive records the workload-adaptive maintenance
# experiment: heat-driven scheduling vs index-everything vs scan-only
# on the Zipf mix — maintenance store-request reduction, hot-partition
# searchable lag, and steady-state query latency per regime.
bench-adaptive:
	$(GO) run ./cmd/rottnest-bench -quick -seed 21 -json BENCH_adaptive.json adaptive

# benchgate fails check when a regenerated benchmark record regresses
# a virtual-time QPS field by more than 20% against the committed
# baseline (untracked files are skipped).
benchgate:
	$(GO) run ./cmd/benchgate BENCH_*.json

# vulncheck runs govulncheck when it is installed; environments
# without it (or without network access to the vuln DB) skip rather
# than fail, so check stays runnable offline.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vulncheck: findings above are advisory, not failing check"; \
	else echo "vulncheck: govulncheck not installed, skipping"; fi
