GO ?= go

.PHONY: build test check fuzz-smoke bench-cache

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the PR gate: vet, formatting, the race detector over every
# package, and a short fuzz pass over the byte-level decoders. The
# experiment shape tests in internal/bench skip themselves under -race
# (their latency thresholds mix in real wall-clock CPU time, which
# race instrumentation inflates), so they get a separate plain run.
check:
	$(GO) vet ./...
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./...
	$(GO) test ./internal/bench/
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each fuzz target briefly (native Go fuzzing allows
# one -fuzz pattern per package invocation): corrupted bytes must
# error, never panic.
fuzz-smoke:
	$(GO) test -fuzz=FuzzTrieNodeDecode -fuzztime=10s ./internal/trie/
	$(GO) test -fuzz=FuzzPageDecode -fuzztime=10s ./internal/parquet/
	$(GO) test -fuzz=FuzzFMIndexOpen -fuzztime=10s ./internal/fmindex/

# bench-cache records the read-cache warm-vs-cold experiment.
bench-cache:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_cache.json cache
