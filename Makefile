GO ?= go

.PHONY: build test check bench-cache

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the PR gate: vet, formatting, and the race detector over the
# packages with real concurrency (protocol core and the object store).
check:
	$(GO) vet ./...
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) test -race ./internal/core/... ./internal/objectstore/...

# bench-cache records the read-cache warm-vs-cold experiment.
bench-cache:
	$(GO) run ./cmd/rottnest-bench -quick -seed 13 -json BENCH_cache.json cache
