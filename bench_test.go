package rottnest_test

import (
	"testing"

	"rottnest/internal/bench"
)

// Each benchmark regenerates one of the paper's evaluation figures at
// CI scale (bench.Options.Quick). One iteration = one full experiment
// — the interesting output is the experiment's own series (run
// cmd/rottnest-bench to see it printed); the benchmark timings track
// the harness cost itself.

func benchOpts(i int) bench.Options {
	return bench.Options{Seed: int64(1 + i), Quick: true}
}

// BenchmarkFig7PhaseDiagrams regenerates Figure 7: TCO phase diagrams
// for substring and UUID search.
func BenchmarkFig7PhaseDiagrams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7PhaseDiagrams(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Scaling regenerates Figure 8: brute-force and Rottnest
// scaling with cluster size.
func BenchmarkFig8Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Scaling(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9VectorPhases regenerates Figure 9: vector phase
// diagrams at recall targets 0.87/0.92/0.97.
func BenchmarkFig9VectorPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9VectorPhases(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ReadGranularity regenerates Figure 10: object-store
// read-granularity latency and page-read overhead.
func BenchmarkFig10ReadGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10ReadGranularity(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11InSitu regenerates Figure 11: the in-situ querying
// ablation (data copy / unoptimized reader).
func BenchmarkFig11InSitu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11InSitu(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Sensitivity regenerates Figure 12: TCO parameter
// sensitivity for vector search at recall 0.92.
func BenchmarkFig12Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12Sensitivity(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Compaction regenerates Figure 13: search latency on
// uncompacted vs compacted index files.
func BenchmarkFig13Compaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig13Compaction(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimumLatency regenerates the Section VII-A minimum
// latency threshold comparison (table T1).
func BenchmarkMinimumLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.MinimumLatency(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCustomFormatComparison regenerates the Section VII-C
// Rottnest-vs-custom-format comparison (table T2).
func BenchmarkCustomFormatComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.CustomFormatComparison(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughput regenerates the Section VII-D3 QPS-cap analysis.
func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Throughput(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation sweeps.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablations(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributionSensitivity regenerates the VII-D2 entropy
// sweep extension experiment.
func BenchmarkDistributionSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DistributionSensitivity(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchCacheWarm measures the read cache's warm-vs-cold
// effect on repeated UUID/substring/vector query sets.
func BenchmarkSearchCacheWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.CacheWarmth(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeColdVsWarm measures the warm serving path: concurrent
// clients replaying a Zipf query mix cold (all caches off) versus warm
// (plan + decoded-object + byte caches primed).
func BenchmarkServeColdVsWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Serve(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchUnderFaults measures the retry layer's latency
// overhead when a seeded fault storm hits the search path.
func BenchmarkSearchUnderFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Chaos(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}
