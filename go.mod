module rottnest

go 1.22
