// Command benchgate guards the committed benchmark records: for each
// BENCH_*.json given, it compares the gated numeric fields against
// the version committed at HEAD and fails if any regressed by more
// than the threshold (default 20%). Files not tracked at HEAD are
// skipped, so the gate never blocks a brand-new experiment.
//
// Gated fields, by JSON key (case-insensitive):
//
//   - keys containing "qps" or "reduction" — higher is better; the
//     gate fails when the value drops more than the threshold below
//     the baseline. QPS pins virtual-time throughput; reduction pins
//     the adaptive scheduler's maintenance-request saving.
//   - keys containing "adaptive_hot_lag" — lower is better; the gate
//     fails when the adaptive regime's hot-partition searchable lag
//     grows more than the threshold above the baseline.
//
// Only virtual-time quantities are gated: they are deterministic for
// a fixed seed, unlike wall-clock rates, which would flake on shared
// CI hardware.
//
// Usage:
//
//	benchgate [-threshold 0.2] BENCH_multi.json BENCH_adaptive.json ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 0.2, "maximum allowed fractional regression")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold F] BENCH_*.json")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		cur, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			failed = true
			continue
		}
		old, err := exec.Command("git", "show", "HEAD:"+path).Output()
		if err != nil {
			// Not tracked at HEAD: a new benchmark has no baseline.
			fmt.Printf("benchgate: %s: no committed baseline, skipping\n", path)
			continue
		}
		curF, err := gatedFields(cur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			failed = true
			continue
		}
		oldF, err := gatedFields(old)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s (HEAD): %v\n", path, err)
			failed = true
			continue
		}
		keys := make([]string, 0, len(oldF))
		for k := range oldF {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		checked := 0
		for _, k := range keys {
			was := oldF[k]
			now, ok := curF[k]
			if !ok || was.value <= 0 {
				continue
			}
			checked++
			if was.higherBetter {
				if now.value < was.value*(1-*threshold) {
					fmt.Fprintf(os.Stderr, "benchgate: %s: %s regressed %.1f -> %.1f (%.0f%% < -%.0f%% allowed)\n",
						path, k, was.value, now.value, (now.value/was.value-1)*100, *threshold*100)
					failed = true
				}
			} else {
				if now.value > was.value*(1+*threshold) {
					fmt.Fprintf(os.Stderr, "benchgate: %s: %s regressed %.1f -> %.1f (+%.0f%% > +%.0f%% allowed)\n",
						path, k, was.value, now.value, (now.value/was.value-1)*100, *threshold*100)
					failed = true
				}
			}
		}
		fmt.Printf("benchgate: %s: %d gated fields checked\n", path, checked)
	}
	if failed {
		os.Exit(1)
	}
}

// gated is one gated numeric field and its direction.
type gated struct {
	value        float64
	higherBetter bool
}

// gatedFields flattens a JSON document to path -> gated value for
// every numeric field whose key matches a gated pattern. Paths look
// like "scaling[2].qps".
func gatedFields(data []byte) (map[string]gated, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]gated)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, child := range t {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				if f, ok := child.(float64); ok {
					lk := strings.ToLower(k)
					switch {
					case strings.Contains(lk, "qps") || strings.Contains(lk, "reduction"):
						out[p] = gated{value: f, higherBetter: true}
					case strings.Contains(lk, "adaptive_hot_lag"):
						out[p] = gated{value: f, higherBetter: false}
					}
					continue
				}
				walk(p, child)
			}
		case []any:
			for i, child := range t {
				walk(fmt.Sprintf("%s[%d]", prefix, i), child)
			}
		}
	}
	walk("", doc)
	return out, nil
}
