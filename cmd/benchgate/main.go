// Command benchgate guards the committed benchmark records: for each
// BENCH_*.json given, it compares every QPS-named numeric field
// against the version committed at HEAD and fails if any regressed by
// more than the threshold (default 20%). Files not tracked at HEAD
// are skipped, so the gate never blocks a brand-new experiment.
//
// Only virtual-time throughput fields (whose JSON key contains "qps")
// are gated: they are deterministic for a fixed seed, unlike
// wall-clock rates, which would flake on shared CI hardware.
//
// Usage:
//
//	benchgate [-threshold 0.2] BENCH_multi.json BENCH_sharded.json ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 0.2, "maximum allowed fractional QPS regression")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold F] BENCH_*.json")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		cur, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			failed = true
			continue
		}
		old, err := exec.Command("git", "show", "HEAD:"+path).Output()
		if err != nil {
			// Not tracked at HEAD: a new benchmark has no baseline.
			fmt.Printf("benchgate: %s: no committed baseline, skipping\n", path)
			continue
		}
		curQPS, err := qpsFields(cur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			failed = true
			continue
		}
		oldQPS, err := qpsFields(old)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s (HEAD): %v\n", path, err)
			failed = true
			continue
		}
		keys := make([]string, 0, len(oldQPS))
		for k := range oldQPS {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		checked := 0
		for _, k := range keys {
			was := oldQPS[k]
			now, ok := curQPS[k]
			if !ok || was <= 0 {
				continue
			}
			checked++
			if now < was*(1-*threshold) {
				fmt.Fprintf(os.Stderr, "benchgate: %s: %s regressed %.1f -> %.1f (%.0f%% < -%.0f%% allowed)\n",
					path, k, was, now, (now/was-1)*100, *threshold*100)
				failed = true
			}
		}
		fmt.Printf("benchgate: %s: %d qps fields checked\n", path, checked)
	}
	if failed {
		os.Exit(1)
	}
}

// qpsFields flattens a JSON document to path -> value for every
// numeric field whose key contains "qps" (case-insensitive). Paths
// look like "scaling[2].qps".
func qpsFields(data []byte) (map[string]float64, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, child := range t {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				if f, ok := child.(float64); ok && strings.Contains(strings.ToLower(k), "qps") {
					out[p] = f
					continue
				}
				walk(p, child)
			}
		case []any:
			for i, child := range t {
				walk(fmt.Sprintf("%s[%d]", prefix, i), child)
			}
		}
	}
	walk("", doc)
	return out, nil
}
