// Command rottnest is a CLI for operating Rottnest indices over a
// directory-backed lake: create a table, generate or ingest data,
// build and maintain indices, and search — the four protocol APIs
// plus table management, persisted under a local directory that
// stands in for an object-storage bucket.
//
// Typical session:
//
//	rottnest create  -store /tmp/bucket -table lake -schema "id:uuid,msg:text"
//	rottnest gen     -store /tmp/bucket -table lake -rows 10000 -batches 3
//	rottnest index   -store /tmp/bucket -table lake -column id -kind trie
//	rottnest search  -store /tmp/bucket -table lake -column msg -substring "error 17"
//	rottnest compact -store /tmp/bucket -table lake -column id -kind trie
//	rottnest vacuum  -store /tmp/bucket -table lake
//	rottnest status  -store /tmp/bucket -table lake
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rottnest"
	"rottnest/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(args)
	case "gen":
		err = cmdGen(args)
	case "ingest":
		err = cmdIngest(args)
	case "index":
		err = cmdIndex(args)
	case "search":
		err = cmdSearch(args)
	case "compact":
		err = cmdCompact(args)
	case "vacuum":
		err = cmdVacuum(args)
	case "maintain":
		err = cmdMaintain(args)
	case "lake-compact":
		err = cmdLakeCompact(args)
	case "status":
		err = cmdStatus(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rottnest: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rottnest %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rottnest <command> [flags]

commands:
  create        create a lake table (-schema "id:uuid,msg:text,emb:vec:64")
  gen           append synthetic rows matching the table schema
  ingest        stream synthetic micro-batches through the group-commit writer
                [-maintain col:kind,col:kind,...] run the scheduler daemon alongside
                [-adaptive] heat-driven maintenance (hot first, cold demoted)
  index         bring one (column, kind) index up to date
  search        query (-uuid HEX | -substring S | -vector "0.1,..." | -where 'a~x AND b=HEX')
                [-shards N] [-replicas M] route through the scatter-gather serving tier
  compact       merge small index files
  vacuum        garbage-collect index files
  maintain      one pass of index + compact-if-fragmented + vacuum
  lake-compact  compact the lake's own data files
  status        show table, snapshot, and index state

common flags: -store DIR  -table PREFIX  [-index-dir PREFIX] [-retries] [-cold]`)
}

// common holds the flags every subcommand shares.
type common struct {
	fs       *flag.FlagSet
	storeDir *string
	table    *string
	indexDir *string
	retries  *bool
	cold     *bool
}

func newCommon(name string) *common {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &common{
		fs:       fs,
		storeDir: fs.String("store", "", "store directory (required)"),
		table:    fs.String("table", "lake", "table key prefix"),
		indexDir: fs.String("index-dir", "", "index key prefix (default <table>-index)"),
		retries:  fs.Bool("retries", false, "retry transient store failures with bounded backoff"),
		cold:     fs.Bool("cold", false, "disable the byte, decoded-object, and plan caches (cold read path)"),
	}
}

func (c *common) parse(args []string) error {
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if *c.storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	if *c.indexDir == "" {
		*c.indexDir = *c.table + "-index"
	}
	return nil
}

func (c *common) open(ctx context.Context) (rottnest.Store, *rottnest.Table, *rottnest.Client, error) {
	store, err := rottnest.NewDirStore(*c.storeDir)
	if err != nil {
		return nil, nil, nil, err
	}
	table, err := rottnest.OpenTable(ctx, store, *c.table)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := rottnest.Config{
		IndexDir: *c.indexDir,
		Retry:    rottnest.RetryPolicy{Enabled: *c.retries},
	}
	if *c.cold {
		cfg.CacheBytes = -1
		cfg.DecodedCacheBytes = -1
		cfg.PlanCacheTTLVersions = -1
	}
	client := rottnest.NewClient(table, cfg)
	return store, table, client, nil
}

// parseSchema parses "name:type[,name:type...]" where type is one of
// uuid, text, int, double, bool, vec:<dim>.
func parseSchema(spec string) (*rottnest.Schema, error) {
	var cols []rottnest.Column
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("bad column spec %q", part)
		}
		col := rottnest.Column{Name: fields[0]}
		switch fields[1] {
		case "uuid":
			col.Type, col.TypeLen = rottnest.TypeFixedLenByteArray, 16
		case "text":
			col.Type = rottnest.TypeByteArray
		case "int":
			col.Type = rottnest.TypeInt64
		case "double":
			col.Type = rottnest.TypeDouble
		case "bool":
			col.Type = rottnest.TypeBool
		case "vec":
			if len(fields) != 3 {
				return nil, fmt.Errorf("vec needs a dimension: %q", part)
			}
			dim, err := strconv.Atoi(fields[2])
			if err != nil || dim <= 0 {
				return nil, fmt.Errorf("bad vec dimension in %q", part)
			}
			col.Type, col.TypeLen = rottnest.TypeFixedLenByteArray, 4*dim
		default:
			return nil, fmt.Errorf("unknown type %q (uuid|text|int|double|bool|vec:<dim>)", fields[1])
		}
		cols = append(cols, col)
	}
	return rottnest.NewSchema(cols...)
}

func cmdCreate(args []string) error {
	c := newCommon("create")
	schemaSpec := c.fs.String("schema", "", `schema, e.g. "id:uuid,msg:text,emb:vec:64" (required)`)
	if err := c.parse(args); err != nil {
		return err
	}
	if *schemaSpec == "" {
		return fmt.Errorf("-schema is required")
	}
	schema, err := parseSchema(*schemaSpec)
	if err != nil {
		return err
	}
	store, err := rottnest.NewDirStore(*c.storeDir)
	if err != nil {
		return err
	}
	if _, err := rottnest.CreateTable(context.Background(), store, *c.table, schema); err != nil {
		return err
	}
	fmt.Printf("created table %s with %d columns under %s\n", *c.table, len(schema.Columns), *c.storeDir)
	return nil
}

func cmdGen(args []string) error {
	c := newCommon("gen")
	rows := c.fs.Int("rows", 10000, "rows per batch")
	batches := c.fs.Int("batches", 1, "number of batches (data files)")
	seed := c.fs.Int64("seed", time.Now().UnixNano(), "generator seed")
	if err := c.parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	_, table, _, err := c.open(ctx)
	if err != nil {
		return err
	}
	snap, err := table.Snapshot(ctx)
	if err != nil {
		return err
	}
	gen := newSynthGen(*seed)
	for b := 0; b < *batches; b++ {
		path, err := table.Append(ctx, gen.batch(snap.Schema, *rows, b), rottnest.FileWriterOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("appended %d rows -> %s\n", *rows, path)
	}
	return nil
}

// synthGen builds schema-shaped synthetic batches for gen and ingest.
type synthGen struct {
	uuids   *workload.UUIDGen
	text    *workload.TextGen
	vecGens map[int]*workload.VectorGen
	seed    int64
}

func newSynthGen(seed int64) *synthGen {
	return &synthGen{
		uuids:   workload.NewUUIDGen(seed),
		text:    workload.NewTextGen(workload.DefaultTextConfig(seed)),
		vecGens: map[int]*workload.VectorGen{},
		seed:    seed,
	}
}

func (g *synthGen) batch(schema *rottnest.Schema, rows, b int) *rottnest.Batch {
	batch := rottnest.NewBatch(schema)
	for ci, col := range schema.Columns {
		switch {
		case col.Type == rottnest.TypeFixedLenByteArray && col.TypeLen == 16:
			vals := make([][]byte, rows)
			for i := range vals {
				k := g.uuids.Next()
				vals[i] = append([]byte(nil), k[:]...)
			}
			batch.Cols[ci] = rottnest.ColumnValues{Bytes: vals}
		case col.Type == rottnest.TypeFixedLenByteArray:
			dim := col.TypeLen / 4
			vg := g.vecGens[dim]
			if vg == nil {
				vg = workload.NewVectorGen(workload.VectorConfig{Seed: g.seed, Dim: dim, Clusters: 64})
				g.vecGens[dim] = vg
			}
			vals := make([][]byte, rows)
			for i := range vals {
				vals[i] = workload.Float32sToBytes(vg.Next())
			}
			batch.Cols[ci] = rottnest.ColumnValues{Bytes: vals}
		case col.Type == rottnest.TypeByteArray:
			vals := make([][]byte, rows)
			for i := range vals {
				vals[i] = []byte(g.text.Doc())
			}
			batch.Cols[ci] = rottnest.ColumnValues{Bytes: vals}
		case col.Type == rottnest.TypeInt64:
			vals := make([]int64, rows)
			base := time.Now().Unix()
			for i := range vals {
				vals[i] = base + int64(b*rows+i)
			}
			batch.Cols[ci] = rottnest.ColumnValues{Ints: vals}
		case col.Type == rottnest.TypeDouble:
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = float64(i)
			}
			batch.Cols[ci] = rottnest.ColumnValues{Doubles: vals}
		case col.Type == rottnest.TypeBool:
			vals := make([]bool, rows)
			for i := range vals {
				vals[i] = i%2 == 0
			}
			batch.Cols[ci] = rottnest.ColumnValues{Bools: vals}
		}
	}
	return batch
}

// cmdIngest streams synthetic micro-batches through the group-commit
// writer: many producer batches land in few conditional PUTs on the
// log, and the printed counters show the amortization.
func cmdIngest(args []string) error {
	c := newCommon("ingest")
	rows := c.fs.Int("rows", 256, "rows per micro-batch")
	batches := c.fs.Int("batches", 32, "number of micro-batches")
	group := c.fs.Int("group", 8, "micro-batches per group commit")
	seed := c.fs.Int64("seed", time.Now().UnixNano(), "generator seed")
	maintain := c.fs.String("maintain", "", "run the maintenance scheduler daemon alongside ingest, keeping a comma-separated column:kind list fresh (e.g. id:trie,msg:fm)")
	adaptiveFlag := c.fs.Bool("adaptive", false, "with -maintain: heat-driven maintenance — hot columns index first, never-queried columns demote to the scan path (DESIGN.md §17)")
	if err := c.parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	_, table, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	snap, err := table.Snapshot(ctx)
	if err != nil {
		return err
	}
	w := rottnest.NewWriter(table, rottnest.WriterOptions{
		MaxBatchRows:       *rows,
		GroupCommitBatches: *group,
		Manual:             true, // commit on Flush/Close: deterministic CLI runs
	})
	var sched *rottnest.Scheduler
	runDone := make(chan error, 1)
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	if *maintain != "" {
		var specs []rottnest.IndexSpec
		for _, item := range strings.Split(*maintain, ",") {
			fields := strings.SplitN(strings.TrimSpace(item), ":", 2)
			if len(fields) != 2 || fields[0] == "" {
				return fmt.Errorf("-maintain wants a comma-separated column:kind list, got %q in %q", item, *maintain)
			}
			kind, err := parseKind(fields[1])
			if err != nil {
				return err
			}
			specs = append(specs, rottnest.IndexSpec{Column: fields[0], Kind: kind})
		}
		opts := rottnest.SchedulerOptions{
			Writer: w,
			Specs:  specs,
			Config: rottnest.Config{IndexDir: *c.indexDir},
		}
		if *adaptiveFlag {
			ledger := rottnest.NewHeatLedger(rottnest.HeatLedgerOptions{})
			client.SetHeatObserver(ledger)
			pilot := rottnest.NewAutopilot(client, ledger, specs, rottnest.AutopilotOptions{})
			opts.Client = client
			opts.Adaptive = rottnest.NewAdaptivePolicy(rottnest.AdaptivePolicyOptions{
				Ledger: ledger,
				Pilot:  pilot,
				Client: client,
			})
		}
		sched = rottnest.NewScheduler(table, opts)
		go func() { runDone <- sched.Run(runCtx) }()
	} else if *adaptiveFlag {
		return fmt.Errorf("-adaptive needs -maintain")
	}
	gen := newSynthGen(*seed)
	acks := make([]*rottnest.Ack, 0, *batches)
	for b := 0; b < *batches; b++ {
		ack, err := w.Append(ctx, gen.batch(snap.Schema, *rows, b))
		if err != nil {
			return err
		}
		acks = append(acks, ack)
	}
	if err := w.Close(ctx); err != nil {
		return err
	}
	for _, ack := range acks {
		if _, err := ack.Wait(ctx); err != nil {
			return err
		}
	}
	ms := w.Registry().Snapshot()
	fmt.Printf("ingested %d rows in %d micro-batches\n",
		ms.Counter("ingest.rows_acked"), ms.Counter("ingest.batches_committed"))
	fmt.Printf("group commits (conditional PUTs on the log): %d\n",
		ms.Counter("ingest.group_commits"))
	if amb := ms.Counter("ingest.ambiguous_resolved"); amb > 0 {
		fmt.Printf("ambiguous commits resolved by read-back: %d\n", amb)
	}
	if sched != nil {
		// Stop the daemon, then converge maintenance so every ingested
		// row is index-covered before the command exits.
		stopRun()
		if err := <-runDone; err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		if err := sched.Quiesce(ctx); err != nil {
			return err
		}
		ss := sched.Registry().Snapshot()
		fmt.Printf("maintenance: %d index, %d compact, %d vacuum jobs; %d rows unindexed\n",
			ss.Counter("ingest.jobs_index"), ss.Counter("ingest.jobs_compact"),
			ss.Counter("ingest.jobs_vacuum"), ss.Gauge("ingest.rows_unindexed"))
		if demotes := ss.Counter("ingest.jobs_demote"); demotes > 0 {
			fmt.Printf("adaptive: %d column(s) demoted to the scan path (no query traffic seen)\n", demotes)
		}
	}
	version, err := table.Version(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("table at version %d\n", version)
	return nil
}

func parseKind(s string) (rottnest.IndexKind, error) {
	switch s {
	case "trie", "uuid":
		return rottnest.KindTrie, nil
	case "fm", "substring":
		return rottnest.KindFM, nil
	case "ivfpq", "vector":
		return rottnest.KindIVFPQ, nil
	default:
		return 0, fmt.Errorf("unknown kind %q (trie|fm|ivfpq)", s)
	}
}

func cmdIndex(args []string) error {
	c := newCommon("index")
	column := c.fs.String("column", "", "column to index (required)")
	kindName := c.fs.String("kind", "", "index kind: trie|fm|ivfpq (required)")
	if err := c.parse(args); err != nil {
		return err
	}
	if *column == "" || *kindName == "" {
		return fmt.Errorf("-column and -kind are required")
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}
	ctx := context.Background()
	_, _, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	entry, err := client.Index(ctx, *column, kind)
	if err != nil {
		return err
	}
	if entry == nil {
		fmt.Println("index already up to date")
		return nil
	}
	fmt.Printf("indexed %d files (%d rows) -> %s (%d bytes)\n",
		len(entry.Files), entry.Rows, entry.IndexKey, entry.SizeBytes)
	return nil
}

func cmdSearch(args []string) error {
	c := newCommon("search")
	column := c.fs.String("column", "", "column to search (required)")
	uuidHex := c.fs.String("uuid", "", "exact 32-hex-digit UUID key")
	substring := c.fs.String("substring", "", "substring pattern")
	regex := c.fs.String("regex", "", "regular expression (driven by its required literal)")
	vector := c.fs.String("vector", "", "comma-separated floats")
	where := c.fs.String("where", "", `compound predicate tree, e.g. 'id=HEX AND (body~"err" OR body=~"warn(ing)?")'`)
	k := c.fs.Int("k", 10, "max results")
	nprobe := c.fs.Int("nprobe", 8, "vector: coarse lists to probe")
	refine := c.fs.Int("refine", 0, "vector: candidates to rerank (default 4k)")
	explain := c.fs.Bool("explain", false, "print the search's span tree (EXPLAIN ANALYZE)")
	shards := c.fs.Int("shards", 1, "scatter-gather: partition the snapshot into N contiguous file-range shards")
	replicas := c.fs.Int("replicas", 1, "scatter-gather: replica workers per shard (hedging kicks in above 1)")
	if err := c.parse(args); err != nil {
		return err
	}
	parseVec := func() ([]float32, error) {
		parts := strings.Split(*vector, ",")
		vec := make([]float32, len(parts))
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
			if err != nil {
				return nil, fmt.Errorf("bad -vector element %q", p)
			}
			vec[i] = float32(f)
		}
		return vec, nil
	}
	if *where != "" {
		// Compound path: a boolean predicate tree, optionally conjoined
		// with a ranked vector leaf on -column.
		expr, err := rottnest.ParseWhere(*where)
		if err != nil {
			return err
		}
		if *vector != "" {
			if *column == "" {
				return fmt.Errorf("-where with -vector needs -column to name the vector column")
			}
			vec, err := parseVec()
			if err != nil {
				return err
			}
			expr = rottnest.And(rottnest.PredVector(*column, vec, *nprobe, *refine), expr)
		}
		cq := rottnest.CompoundQuery{Expr: expr, K: *k, Snapshot: -1, Output: *column}
		if *shards > 1 || *replicas > 1 {
			return runShardedSearch(c, *explain, *vector != "", *shards, *replicas,
				func(ctx context.Context, r *rottnest.ShardRouter, trace bool) (*rottnest.ShardResult, *rottnest.TraceNode, error) {
					if trace {
						return r.TraceCompound(ctx, cq)
					}
					res, err := r.SearchCompound(ctx, cq)
					return res, nil, err
				})
		}
		return runSearch(c, *explain, *vector != "", func(ctx context.Context, client *rottnest.Client, trace bool) (*rottnest.Result, *rottnest.TraceNode, error) {
			if trace {
				return client.TraceCompound(ctx, cq)
			}
			res, err := client.SearchCompound(ctx, cq)
			return res, nil, err
		})
	}
	if *column == "" {
		return fmt.Errorf("-column is required")
	}
	q := rottnest.Query{Column: *column, K: *k, Snapshot: -1, NProbe: *nprobe, Refine: *refine}
	switch {
	case *uuidHex != "":
		raw, err := hex.DecodeString(strings.ReplaceAll(*uuidHex, "-", ""))
		if err != nil || len(raw) != 16 {
			return fmt.Errorf("bad -uuid: want 32 hex digits")
		}
		var key [16]byte
		copy(key[:], raw)
		q.UUID = &key
	case *substring != "":
		q.Substring = []byte(*substring)
	case *regex != "":
		q.Regex = *regex
	case *vector != "":
		vec, err := parseVec()
		if err != nil {
			return err
		}
		q.Vector = vec
	default:
		return fmt.Errorf("one of -uuid, -substring, -regex, -vector, -where is required")
	}
	if *shards > 1 || *replicas > 1 {
		return runShardedSearch(c, *explain, q.Vector != nil, *shards, *replicas,
			func(ctx context.Context, r *rottnest.ShardRouter, trace bool) (*rottnest.ShardResult, *rottnest.TraceNode, error) {
				if trace {
					return r.Trace(ctx, q)
				}
				res, err := r.Search(ctx, q)
				return res, nil, err
			})
	}
	return runSearch(c, *explain, q.Vector != nil, func(ctx context.Context, client *rottnest.Client, trace bool) (*rottnest.Result, *rottnest.TraceNode, error) {
		if trace {
			return client.Trace(ctx, q)
		}
		res, err := client.Search(ctx, q)
		return res, nil, err
	})
}

// runShardedSearch routes one search through a scatter-gather router
// at N shards × M replicas; -explain renders the scatter tree
// (router.plan → router.scatter{router.shard...} → router.merge).
func runShardedSearch(c *common, explain, scored bool, shards, replicas int, do func(ctx context.Context, r *rottnest.ShardRouter, trace bool) (*rottnest.ShardResult, *rottnest.TraceNode, error)) error {
	ctx := context.Background()
	store, err := rottnest.NewDirStore(*c.storeDir)
	if err != nil {
		return err
	}
	opts := rottnest.ShardOptions{
		Shards:   shards,
		Replicas: replicas,
		IndexDir: *c.indexDir,
	}
	if replicas > 1 {
		opts.Hedge = rottnest.HedgeOptions{Enabled: true}
	}
	if *c.cold {
		opts.CacheBytes = -1
		opts.DecodedCacheBytes = -1
		opts.PlanCacheTTLVersions = -1
	}
	r, err := rottnest.NewShardRouter(ctx, store, *c.table, opts)
	if err != nil {
		return err
	}
	start := time.Now()
	res, tree, err := do(ctx, r, explain)
	if tree != nil {
		if rerr := rottnest.RenderTrace(os.Stdout, tree); rerr != nil {
			return rerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d match(es) in %v via %d shard(s) x %d replica(s) (snapshot %d, %d scattered, hedges %d/%d won)\n",
		len(res.Matches), time.Since(start).Round(time.Millisecond), shards, replicas,
		res.Stats.Version, res.Stats.Shards, res.Stats.HedgeWins, res.Stats.Hedges)
	printMatches(res.Matches, scored)
	return nil
}

// printMatches renders the result rows shared by the single-node and
// sharded search paths.
func printMatches(matches []rottnest.Match, scored bool) {
	for i, m := range matches {
		val := m.Value
		if len(val) > 80 {
			val = val[:80]
		}
		if scored {
			fmt.Printf("%3d. %s row %d  dist=%.4f\n", i+1, m.Path, m.Row, m.Score)
		} else {
			fmt.Printf("%3d. %s row %d  %q\n", i+1, m.Path, m.Row, val)
		}
	}
}

// runSearch opens the client, executes one search (traced under
// -explain), and prints the result summary and matches.
func runSearch(c *common, explain, scored bool, do func(ctx context.Context, client *rottnest.Client, trace bool) (*rottnest.Result, *rottnest.TraceNode, error)) error {
	ctx := context.Background()
	_, _, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	start := time.Now()
	res, tree, err := do(ctx, client, explain)
	if tree != nil {
		if rerr := rottnest.RenderTrace(os.Stdout, tree); rerr != nil {
			return rerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d match(es) in %v (index files: %d, pages probed: %d, files scanned: %d)\n",
		len(res.Matches), time.Since(start).Round(time.Millisecond),
		res.Stats.IndexFiles, res.Stats.PagesProbed, res.Stats.FilesScanned)
	fmt.Printf("reads: %d GETs, %.1f KB (cache: %d hits, %d misses, %.1f KB saved)\n",
		res.Stats.GETs, float64(res.Stats.BytesRead)/1e3,
		res.Stats.CacheHits, res.Stats.CacheMisses, float64(res.Stats.CacheBytesSaved)/1e3)
	if explain {
		// Planner savings: pages the probes nominated, pages the page-set
		// intersection pruned before any fetch, and probes answered by a
		// shared flight or the probe memo instead of executing.
		fmt.Printf("plan: %d candidate pages, %d pruned by intersection, %d probes coalesced\n",
			res.Stats.PagesCandidate, res.Stats.PagesPruned, res.Stats.ProbesCoalesced)
		// Cost-based AND staging: whether cheap leaves ran first, and
		// whether their empty intersection let the executor skip the
		// expensive probes entirely.
		if res.Stats.OrderedAND {
			if res.Stats.ShortCircuited {
				fmt.Printf("plan: AND ordered by cost, short-circuited (%d expensive probes skipped)\n",
					res.Stats.LeavesSkipped)
			} else {
				fmt.Printf("plan: AND ordered by cost, no short-circuit\n")
			}
		}
	}
	if res.Stats.Retries > 0 {
		fmt.Printf("retries: %d (%d throttle waits)\n", res.Stats.Retries, res.Stats.ThrottleWaits)
	}
	printMatches(res.Matches, scored)
	return nil
}

func cmdCompact(args []string) error {
	c := newCommon("compact")
	column := c.fs.String("column", "", "column (required)")
	kindName := c.fs.String("kind", "", "index kind (required)")
	smaller := c.fs.Int64("smaller-than", 0, "only merge index files below this size in bytes (0 = all)")
	if err := c.parse(args); err != nil {
		return err
	}
	if *column == "" || *kindName == "" {
		return fmt.Errorf("-column and -kind are required")
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}
	ctx := context.Background()
	_, _, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	merged, err := client.Compact(ctx, *column, kind, rottnest.CompactOptions{SmallerThanBytes: *smaller})
	if err != nil {
		return err
	}
	if len(merged) == 0 {
		fmt.Println("nothing to compact")
		return nil
	}
	for _, e := range merged {
		fmt.Printf("merged -> %s covering %d files (%d bytes)\n", e.IndexKey, len(e.Files), e.SizeBytes)
	}
	return nil
}

func cmdVacuum(args []string) error {
	c := newCommon("vacuum")
	keep := c.fs.Int64("keep-snapshot", -1, "oldest lake snapshot version to keep searchable")
	if err := c.parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	_, _, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	report, err := client.Vacuum(ctx, rottnest.VacuumOptions{KeepSnapshot: *keep})
	if err != nil {
		return err
	}
	fmt.Printf("dropped %d metadata entries, removed %d objects, kept %d entries\n",
		len(report.DroppedEntries), len(report.RemovedObjects), report.KeptEntries)
	return nil
}

func cmdLakeCompact(args []string) error {
	c := newCommon("lake-compact")
	smaller := c.fs.Int64("smaller-than", 1<<40, "merge data files below this size in bytes")
	targetRows := c.fs.Int64("target-rows", 1<<20, "rows per output file")
	if err := c.parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	_, table, _, err := c.open(ctx)
	if err != nil {
		return err
	}
	paths, err := table.Compact(ctx, *smaller, *targetRows)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		fmt.Println("nothing to compact")
		return nil
	}
	fmt.Printf("rewrote lake into %d file(s): %v\n", len(paths), paths)
	return nil
}

func cmdStatus(args []string) error {
	c := newCommon("status")
	if err := c.parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	_, table, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	snap, err := table.Snapshot(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("table %s @ version %d: %d files, %d live rows\n",
		*c.table, snap.Version, len(snap.Files), snap.LiveRows())
	var bytes int64
	for _, f := range snap.Files {
		bytes += f.Size
	}
	fmt.Printf("  data: %.2f MB\n", float64(bytes)/1e6)
	statuses, err := client.Status(ctx)
	if err != nil {
		return err
	}
	if len(statuses) == 0 {
		fmt.Println("  no indices")
		return nil
	}
	for _, st := range statuses {
		fmt.Printf("  index column=%s kind=%d: %d files (%.1f KB), covers %d/%d lake files, %d stale refs, %d redundant\n",
			st.Column, st.Kind, st.Entries, float64(st.IndexBytes)/1024,
			st.CoveredFiles, st.CoveredFiles+st.UnindexedFiles, st.StaleRefs, st.RedundantEntries)
	}
	return nil
}

// cmdMaintain runs one automated maintenance pass: index new files,
// compact when fragmented, vacuum when stale.
func cmdMaintain(args []string) error {
	c := newCommon("maintain")
	column := c.fs.String("column", "", "column (required)")
	kindName := c.fs.String("kind", "", "index kind (required)")
	threshold := c.fs.Int("compact-at", 8, "compact once this many index files accumulate")
	if err := c.parse(args); err != nil {
		return err
	}
	if *column == "" || *kindName == "" {
		return fmt.Errorf("-column and -kind are required")
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}
	ctx := context.Background()
	_, _, client, err := c.open(ctx)
	if err != nil {
		return err
	}
	report, err := client.Maintain(ctx, rottnest.MaintainPolicy{CompactWhenEntries: *threshold},
		rottnest.IndexSpec{Column: *column, Kind: kind})
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d, compacted %d", len(report.Indexed), report.Compacted)
	if report.Vacuum != nil {
		fmt.Printf(", vacuum dropped %d entries / removed %d objects",
			len(report.Vacuum.DroppedEntries), len(report.Vacuum.RemovedObjects))
	}
	fmt.Println()
	return nil
}
