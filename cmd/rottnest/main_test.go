package main

import (
	"os"
	"path/filepath"
	"testing"

	"rottnest"
)

func TestParseSchema(t *testing.T) {
	schema, err := parseSchema("id:uuid, msg:text,ts:int,score:double,ok:bool,emb:vec:8")
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Columns) != 6 {
		t.Fatalf("columns = %d", len(schema.Columns))
	}
	if schema.Columns[0].Type != rottnest.TypeFixedLenByteArray || schema.Columns[0].TypeLen != 16 {
		t.Fatalf("uuid column = %+v", schema.Columns[0])
	}
	if schema.Columns[5].TypeLen != 32 {
		t.Fatalf("vec column = %+v", schema.Columns[5])
	}
	for _, bad := range []string{"", "noname", "x:unknown", "v:vec", "v:vec:zero", "v:vec:-1"} {
		if _, err := parseSchema(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]rottnest.IndexKind{
		"trie": rottnest.KindTrie, "uuid": rottnest.KindTrie,
		"fm": rottnest.KindFM, "substring": rottnest.KindFM,
		"ivfpq": rottnest.KindIVFPQ, "vector": rottnest.KindIVFPQ,
	}
	for in, want := range cases {
		got, err := parseKind(in)
		if err != nil || got != want {
			t.Fatalf("parseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseKind("btree"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestCLIWorkflow drives the subcommand functions end to end against
// a temp directory store, exactly as the CLI would.
func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	run := func(fn func([]string) error, args ...string) {
		t.Helper()
		if err := fn(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	run(cmdCreate, "-store", dir, "-table", "lake", "-schema", "id:uuid,msg:text")
	run(cmdGen, "-store", dir, "-table", "lake", "-rows", "500", "-batches", "2", "-seed", "7")
	run(cmdIndex, "-store", dir, "-table", "lake", "-column", "id", "-kind", "trie")
	run(cmdIndex, "-store", dir, "-table", "lake", "-column", "msg", "-kind", "fm")
	run(cmdSearch, "-store", dir, "-table", "lake", "-column", "msg", "-substring", "a", "-k", "3")
	run(cmdSearch, "-store", dir, "-table", "lake", "-where", `msg~a AND (msg~e OR msg~"th")`, "-k", "3", "-explain")
	run(cmdCompact, "-store", dir, "-table", "lake", "-column", "id", "-kind", "trie")
	run(cmdLakeCompact, "-store", dir, "-table", "lake")
	run(cmdIndex, "-store", dir, "-table", "lake", "-column", "id", "-kind", "trie")
	run(cmdVacuum, "-store", dir, "-table", "lake")
	run(cmdStatus, "-store", dir, "-table", "lake")

	// The store really is a directory tree.
	entries, err := os.ReadDir(filepath.Join(dir, "lake"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("store dir empty: %v", err)
	}

	// Error paths.
	if err := cmdCreate([]string{"-store", dir, "-table", "lake", "-schema", "id:uuid"}); err == nil {
		t.Fatal("double create accepted")
	}
	if err := cmdSearch([]string{"-store", dir, "-table", "lake", "-column", "msg"}); err == nil {
		t.Fatal("search without predicate accepted")
	}
	if err := cmdSearch([]string{"-store", dir, "-table", "lake", "-column", "id", "-uuid", "nothex"}); err == nil {
		t.Fatal("bad uuid accepted")
	}
	if err := cmdSearch([]string{"-store", dir, "-table", "lake", "-where", "msg~a AND"}); err == nil {
		t.Fatal("bad -where accepted")
	}
	if err := cmdIndex([]string{"-store", dir, "-table", "lake", "-column", "id", "-kind", "wat"}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := cmdGen([]string{"-table", "lake"}); err == nil {
		t.Fatal("missing -store accepted")
	}
}

// TestCLIPersistenceAcrossProcesses simulates two separate process
// invocations sharing only the directory store: one indexes, the
// other searches.
func TestCLIPersistenceAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	if err := cmdCreate([]string{"-store", dir, "-schema", "msg:text"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-store", dir, "-rows", "300", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdIndex([]string{"-store", dir, "-column", "msg", "-kind", "fm"}); err != nil {
		t.Fatal(err)
	}
	// "Another process": fresh handles via the search command.
	if err := cmdSearch([]string{"-store", dir, "-column", "msg", "-substring", "the", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIMaintain(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-store", dir, "-schema", "id:uuid"},
	} {
		if err := cmdCreate(args); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cmdGen([]string{"-store", dir, "-rows", "200", "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdMaintain([]string{"-store", dir, "-column", "id", "-kind", "trie", "-compact-at", "3"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdStatus([]string{"-store", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMaintain([]string{"-store", dir, "-column", "id"}); err == nil {
		t.Fatal("missing -kind accepted")
	}
}
