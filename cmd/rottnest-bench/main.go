// Command rottnest-bench regenerates the paper's evaluation figures
// (Section VII) on the simulated substrate. Each experiment prints
// the same series the paper plots; absolute numbers differ (the
// substrate is a simulator), but the shapes — who wins, where the
// knees and crossovers fall — are the reproduction targets recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	rottnest-bench [-quick] [-seed N] [-json FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE] <experiment|all>
//
// Experiments: fig7 fig8 fig9 fig10 fig11 fig12 fig13 latency lance
// throughput ablation distribution cache serve multi chaos sharded
// build planner ingest adaptive
//
// With -trace, experiments collect one exemplar span tree per search
// site ("EXPLAIN ANALYZE" for the measured queries) and the map
// {experiment: {site: tree}} is written as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rottnest/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(bench.Options) (any, error)
}{
	{"fig7", "TCO phase diagrams: substring and UUID search", func(o bench.Options) (any, error) {
		return bench.Fig7PhaseDiagrams(o)
	}},
	{"fig8", "brute-force and Rottnest scaling with cluster size", func(o bench.Options) (any, error) {
		return bench.Fig8Scaling(o)
	}},
	{"fig9", "vector phase diagrams at recall 0.87/0.92/0.97", func(o bench.Options) (any, error) {
		return bench.Fig9VectorPhases(o)
	}},
	{"fig10", "read granularity and page-read overhead", func(o bench.Options) (any, error) {
		return bench.Fig10ReadGranularity(o)
	}},
	{"fig11", "in-situ querying ablation", func(o bench.Options) (any, error) {
		return bench.Fig11InSitu(o)
	}},
	{"fig12", "TCO parameter sensitivity", func(o bench.Options) (any, error) {
		return bench.Fig12Sensitivity(o)
	}},
	{"fig13", "compaction vs search latency", func(o bench.Options) (any, error) {
		return bench.Fig13Compaction(o)
	}},
	{"latency", "minimum latency thresholds (VII-A)", func(o bench.Options) (any, error) {
		return bench.MinimumLatency(o)
	}},
	{"lance", "in-situ Parquet vs ideal custom format (VII-C)", func(o bench.Options) (any, error) {
		return bench.CustomFormatComparison(o)
	}},
	{"throughput", "QPS caps from the per-prefix GET limit (VII-D3)", func(o bench.Options) (any, error) {
		return bench.Throughput(o)
	}},
	{"ablation", "design-choice ablations (componentization, block/page sizes, PQ M)", func(o bench.Options) (any, error) {
		return bench.Ablations(o)
	}},
	{"distribution", "data-distribution sensitivity: text entropy vs phase boundary (VII-D2)", func(o bench.Options) (any, error) {
		return bench.DistributionSensitivity(o)
	}},
	{"cache", "read cache warm-vs-cold: repeated query latency and GET footprint", func(o bench.Options) (any, error) {
		return bench.CacheWarmth(o)
	}},
	{"serve", "warm serving path: concurrent Zipf mix, cold vs warm p50/p99, GETs/query, QPS", func(o bench.Options) (any, error) {
		return bench.Serve(o)
	}},
	{"multi", "multi-predicate plans: page-set intersection GETs vs separate searches, shared-probe batching", func(o bench.Options) (any, error) {
		return bench.Multi(o)
	}},
	{"chaos", "search latency overhead under a fault storm with retries on", func(o bench.Options) (any, error) {
		return bench.Chaos(o)
	}},
	{"sharded", "scatter-gather serving: QPS vs shard count, hedged-request p99 with a slow replica", func(o bench.Options) (any, error) {
		return bench.Sharded(o)
	}},
	{"build", "index-build fast path: SA-IS vs oracle, FM/trie/IVF-PQ build rates", func(o bench.Options) (any, error) {
		return bench.IndexBuild(o)
	}},
	{"planner", "probe-side fast path: FM superwalk occ-fetch dedup, cost-based AND short-circuit, ADC scan rate", func(o bench.Options) (any, error) {
		return bench.Planner(o)
	}},
	{"ingest", "continuous ingestion: group-commit conditional-PUT amortization, searchable-lag p50/p99 under a budgeted scheduler", func(o bench.Options) (any, error) {
		return bench.Ingest(o)
	}},
	{"adaptive", "workload-adaptive maintenance: heat-driven scheduling vs index-everything vs scan-only on a Zipf mix", func(o bench.Options) (any, error) {
		return bench.Adaptive(o)
	}},
}

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (CI-sized)")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonPath := flag.String("json", "", "write the experiment results as JSON to this file")
	tracePath := flag.String("trace", "", "write per-experiment search span trees as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rottnest-bench [-quick] [-seed N] [-json FILE] [-cpuprofile FILE] [-memprofile FILE] <experiment|all>")
		fmt.Fprintln(os.Stderr, "\nexperiments:")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	target := flag.Arg(0)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: create %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rottnest-bench: create %s: %v\n", *memProfile, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rottnest-bench: write heap profile: %v\n", err)
			}
		}()
	}
	opts := bench.Options{Seed: *seed, Quick: *quick, Out: os.Stdout}
	results := make(map[string]any)
	traces := make(map[string]map[string]*bench.TraceNode)
	ran := false
	for _, e := range experiments {
		if target != "all" && target != e.name {
			continue
		}
		ran = true
		if *tracePath != "" {
			opts.Trace = bench.NewTraceLog() // fresh log per experiment
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		res, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench %s: %v\n", e.name, err)
			os.Exit(1)
		}
		results[e.name] = res
		if nodes := opts.Trace.Nodes(); len(nodes) > 0 {
			traces[e.name] = nodes
		}
		fmt.Printf("=== %s done in %v ===\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rottnest-bench: unknown experiment %q\n\n", target)
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		data, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: marshal traces: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: write %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("traces written to %s\n", *tracePath)
	}
	if *jsonPath != "" {
		var payload any = results
		if len(results) == 1 {
			for _, r := range results {
				payload = r // single experiment: write its result directly
			}
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
}
