// Command rottnest-bench regenerates the paper's evaluation figures
// (Section VII) on the simulated substrate. Each experiment prints
// the same series the paper plots; absolute numbers differ (the
// substrate is a simulator), but the shapes — who wins, where the
// knees and crossovers fall — are the reproduction targets recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	rottnest-bench [-quick] [-seed N] <experiment|all>
//
// Experiments: fig7 fig8 fig9 fig10 fig11 fig12 fig13 latency lance
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rottnest/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(bench.Options) error
}{
	{"fig7", "TCO phase diagrams: substring and UUID search", func(o bench.Options) error {
		_, err := bench.Fig7PhaseDiagrams(o)
		return err
	}},
	{"fig8", "brute-force and Rottnest scaling with cluster size", func(o bench.Options) error {
		_, err := bench.Fig8Scaling(o)
		return err
	}},
	{"fig9", "vector phase diagrams at recall 0.87/0.92/0.97", func(o bench.Options) error {
		_, err := bench.Fig9VectorPhases(o)
		return err
	}},
	{"fig10", "read granularity and page-read overhead", func(o bench.Options) error {
		_, err := bench.Fig10ReadGranularity(o)
		return err
	}},
	{"fig11", "in-situ querying ablation", func(o bench.Options) error {
		_, err := bench.Fig11InSitu(o)
		return err
	}},
	{"fig12", "TCO parameter sensitivity", func(o bench.Options) error {
		_, err := bench.Fig12Sensitivity(o)
		return err
	}},
	{"fig13", "compaction vs search latency", func(o bench.Options) error {
		_, err := bench.Fig13Compaction(o)
		return err
	}},
	{"latency", "minimum latency thresholds (VII-A)", func(o bench.Options) error {
		_, err := bench.MinimumLatency(o)
		return err
	}},
	{"lance", "in-situ Parquet vs ideal custom format (VII-C)", func(o bench.Options) error {
		_, err := bench.CustomFormatComparison(o)
		return err
	}},
	{"throughput", "QPS caps from the per-prefix GET limit (VII-D3)", func(o bench.Options) error {
		_, err := bench.Throughput(o)
		return err
	}},
	{"ablation", "design-choice ablations (componentization, block/page sizes, PQ M)", func(o bench.Options) error {
		_, err := bench.Ablations(o)
		return err
	}},
	{"distribution", "data-distribution sensitivity: text entropy vs phase boundary (VII-D2)", func(o bench.Options) error {
		_, err := bench.DistributionSensitivity(o)
		return err
	}},
}

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (CI-sized)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rottnest-bench [-quick] [-seed N] <experiment|all>")
		fmt.Fprintln(os.Stderr, "\nexperiments:")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	target := flag.Arg(0)
	opts := bench.Options{Seed: *seed, Quick: *quick, Out: os.Stdout}
	ran := false
	for _, e := range experiments {
		if target != "all" && target != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "rottnest-bench %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %v ===\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rottnest-bench: unknown experiment %q\n\n", target)
		flag.Usage()
		os.Exit(2)
	}
}
