// Command phasediagram builds a total-cost-of-ownership phase diagram
// (the paper's Section VI methodology) for a UUID-search workload:
// which of brute-force scanning, Rottnest, or a dedicated copy-data
// system is cheapest at each (operating months, total queries) point.
// Edit the Measurement fields to model your own workload.
package main

import (
	"fmt"

	"rottnest/internal/tco"
)

func main() {
	// Measured (or estimated) resources for a ~300 GB dataset — the
	// scale of the paper's substring corpus. Swap in your own
	// measurements from the rottnest-bench harness.
	m := tco.Measurement{
		Pricing:                tco.DefaultPricing(),
		RawBytes:               300e9,
		IndexBytes:             20e9, // UUID tries are small
		CopyBytes:              320e9,
		IndexSeconds:           4 * 3600, // one instance, index + compact
		RottnestQuerySeconds:   1.7,      // paper's UUID minimum latency
		BruteForceWorkers:      8,
		BruteForceQuerySeconds: 400,
		DedicatedReplicas:      3,
		ScaleFactor:            1,
	}
	p := m.Params()

	fmt.Println("TCO parameters (USD):")
	fmt.Printf("  cpm_i  (copy-data / month)   %8.2f\n", p.CPMCopyData)
	fmt.Printf("  cpm_bf (brute-force / month) %8.2f\n", p.CPMBruteForce)
	fmt.Printf("  cpq_bf (brute-force / query) %8.4f\n", p.CPQBruteForce)
	fmt.Printf("  ic_r   (index, one-time)     %8.2f\n", p.ICRottnest)
	fmt.Printf("  cpm_r  (rottnest / month)    %8.2f\n", p.CPMRottnest)
	fmt.Printf("  cpq_r  (rottnest / query)    %8.6f\n", p.CPQRottnest)
	fmt.Println()

	d := tco.ComputeDiagram(p, 0.1, 100, 1, 1e9, 48)
	fmt.Println("phase diagram (B=brute force, R=rottnest, C=copy data):")
	fmt.Print(d.Render())
	fmt.Println()

	for _, months := range []float64{1, 10, 50} {
		lo, hi, ok := p.RottnestWindow(months)
		if !ok {
			fmt.Printf("at %3.0f months: rottnest never wins\n", months)
			continue
		}
		fmt.Printf("at %3.0f months: rottnest is cheapest from %.1e to %.1e total queries\n", months, lo, hi)
	}
	if be, ok := p.BreakEvenMonths(3000); ok {
		fmt.Printf("break-even vs brute force at 3000 queries/month: %.1f days\n", be*30)
	}
}
