// Command logsearch models the paper's observability motivation: a
// service writes log batches into a lake table (message text plus a
// high-cardinality pod UUID), Rottnest maintains a substring index on
// the messages and a trie index on the pod IDs, and an SRE runs
// needle-in-haystack queries. It also demonstrates the LSM-style
// index lifecycle: many small index files accumulate, compact merges
// them, vacuum removes the leftovers — and search latency drops
// (Figure 13's effect).
package main

import (
	"context"
	"fmt"
	"log"

	"rottnest"
	"rottnest/internal/workload"
)

const (
	batches       = 8
	rowsPerBatch  = 2500
	needleMessage = "ERROR connection reset by peer during checkout"
)

func main() {
	ctx := context.Background()
	store, clock, _ := rottnest.NewSimulatedStore()

	schema := rottnest.MustSchema(
		rottnest.Column{Name: "pod_id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16},
		rottnest.Column{Name: "message", Type: rottnest.TypeByteArray},
	)
	table, err := rottnest.CreateTableWith(ctx, store, "lake/logs", schema, rottnest.TableOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "rottnest/logs", Clock: clock})

	// Ingest + index loop: each batch is indexed as it lands, so the
	// index accumulates one small file per batch.
	uuids := workload.NewUUIDGen(7)
	text := workload.NewTextGen(workload.DefaultTextConfig(7))
	pods := uuids.Batch(16) // 16 pods emit all logs
	var needlePod [16]byte
	for batch := 0; batch < batches; batch++ {
		b := rottnest.NewBatch(schema)
		ids := make([][]byte, rowsPerBatch)
		msgs := make([][]byte, rowsPerBatch)
		for i := 0; i < rowsPerBatch; i++ {
			pod := pods[(batch*rowsPerBatch+i)%len(pods)]
			ids[i] = pod[:]
			msgs[i] = []byte("INFO " + text.Doc())
		}
		if batch == 5 {
			msgs[1234] = []byte(needleMessage)
			copy(needlePod[:], ids[1234])
		}
		b.Cols[0] = rottnest.ColumnValues{Bytes: ids}
		b.Cols[1] = rottnest.ColumnValues{Bytes: msgs}
		if _, err := table.Append(ctx, b, rottnest.FileWriterOptions{RowGroupRows: 1024, PageBytes: 8 << 10}); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Index(ctx, "message", rottnest.KindFM); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Index(ctx, "pod_id", rottnest.KindTrie); err != nil {
			log.Fatal(err)
		}
	}

	search := func(label string) {
		session := rottnest.NewSession()
		sctx := rottnest.WithSession(ctx, session)
		res, err := client.Search(sctx, rottnest.Query{
			Column: "message", Substring: []byte("connection reset by peer"), K: 10, Snapshot: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %d hit(s) via %d index files, latency %v\n",
			label, len(res.Matches), res.Stats.IndexFiles, res.Stats.Latency.Round(1e6))
		for _, m := range res.Matches {
			fmt.Printf("    %s row %d: %s\n", m.Path, m.Row, m.Value)
		}
	}

	search("pre-compaction:")

	// Compact the 8 small FM index files into 1, then vacuum.
	merged, err := client.Compact(ctx, "message", rottnest.KindFM, rottnest.CompactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Compact(ctx, "pod_id", rottnest.KindTrie, rottnest.CompactOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted message index into %d file(s) covering %d lake files\n",
		len(merged), len(merged[0].Files))
	report, err := client.Vacuum(ctx, rottnest.VacuumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vacuum: dropped %d metadata entries, kept %d\n",
		len(report.DroppedEntries), report.KeptEntries)

	search("post-compaction:")

	// Drill down by pod UUID — the high-cardinality filter min-max
	// stats cannot serve.
	session := rottnest.NewSession()
	sctx := rottnest.WithSession(ctx, session)
	res, err := client.Search(sctx, rottnest.Query{Column: "pod_id", UUID: &needlePod, K: 5, Snapshot: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pod drill-down:    %d rows from pod %x..., latency %v\n",
		len(res.Matches), needlePod[:4], res.Stats.Latency.Round(1e6))

	// Compound query: the SRE's actual question — errors from THIS pod.
	// One plan probes the trie and the FM index once each, intersects
	// their candidate page sets, and fetches only surviving pages, so
	// the cross-column filter costs less than two separate searches.
	sctx = rottnest.WithSession(ctx, rottnest.NewSession())
	cres, err := client.SearchCompound(sctx, rottnest.CompoundQuery{
		Expr: rottnest.And(
			rottnest.PredUUID("pod_id", needlePod),
			rottnest.PredSubstring("message", []byte("connection reset")),
		),
		K: 5, Snapshot: -1, Output: "message",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compound query:    %d hit(s) for pod AND message, %d candidate pages, %d pruned, latency %v\n",
		len(cres.Matches), cres.Stats.PagesCandidate, cres.Stats.PagesPruned, cres.Stats.Latency.Round(1e6))
	for _, m := range cres.Matches {
		fmt.Printf("    %s row %d: %s\n", m.Path, m.Row, m.Value)
	}
}
