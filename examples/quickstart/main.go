// Command quickstart is the smallest end-to-end Rottnest program: it
// creates a lake table of UUID-keyed events on a simulated object
// store, indexes the UUID column, and runs point lookups that would
// otherwise need a full scan — printing the simulated object-store
// latency of each.
//
// With -trace FILE, every lookup runs through Client.Trace, the span
// trees are written to FILE as JSON, and the program verifies its own
// output: the file must parse back, each tree must contain the
// search.plan and search.probe phases (and search.read when pages
// were probed), and the phase virtual durations must sum exactly to
// the latency the search reported. Any violation exits nonzero, which
// is what `make trace-smoke` relies on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"rottnest"
	"rottnest/internal/workload"
)

// tracedLookup is one lookup's span tree plus the stats the search
// itself reported, so the verification pass can cross-check them.
type tracedLookup struct {
	Pass      int                 `json:"pass"`
	Key       string              `json:"key"`
	LatencyNS int64               `json:"latency_ns"`
	Pages     int                 `json:"pages_probed"`
	Tree      *rottnest.TraceNode `json:"tree"`
}

func main() {
	tracePath := flag.String("trace", "", "write per-lookup span trees as JSON to this file and self-verify them")
	flag.Parse()

	ctx := context.Background()

	// A simulated S3: strong read-after-write consistency, ~30ms
	// GETs, metered requests.
	store, clock, metrics := rottnest.NewSimulatedStore()

	// The lake: one table with a UUID column and a payload column.
	schema := rottnest.MustSchema(
		rottnest.Column{Name: "event_id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16},
		rottnest.Column{Name: "payload", Type: rottnest.TypeByteArray},
	)
	table, err := rottnest.CreateTableWith(ctx, store, "lake/events", schema, rottnest.TableOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest three batches (three Parquet files).
	gen := workload.NewUUIDGen(42)
	var keys [][16]byte
	for batch := 0; batch < 3; batch++ {
		const rows = 20000
		ks := gen.Batch(rows)
		keys = append(keys, ks...)
		b := rottnest.NewBatch(schema)
		ids := make([][]byte, rows)
		payloads := make([][]byte, rows)
		for i, k := range ks {
			kk := k
			ids[i] = kk[:]
			payloads[i] = []byte(fmt.Sprintf("event %d of batch %d", i, batch))
		}
		b.Cols[0] = rottnest.ColumnValues{Bytes: ids}
		b.Cols[1] = rottnest.ColumnValues{Bytes: payloads}
		if _, err := table.Append(ctx, b, rottnest.FileWriterOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	snap, _ := table.Snapshot(ctx)
	fmt.Printf("lake: %d files, %d rows\n", len(snap.Files), snap.LiveRows())

	// Build the Rottnest index (one call covers all new files).
	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "rottnest/events", Clock: clock})
	entry, err := client.Index(ctx, "event_id", rottnest.KindTrie)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d files (%d rows) into %s (%.1f KB)\n",
		len(entry.Files), entry.Rows, entry.IndexKey, float64(entry.SizeBytes)/1024)

	// Point lookups with virtual-latency accounting. The client reads
	// through a shared LRU cache (on by default), so repeating a
	// lookup skips the object store: the second pass reports fewer
	// GETs and lower simulated latency.
	var traced []tracedLookup
	for pass := 0; pass < 2; pass++ {
		fmt.Printf("--- pass %d (%s) ---\n", pass+1, map[int]string{0: "cold", 1: "warm"}[pass])
		for _, i := range []int{0, 25000, 59999} {
			session := rottnest.NewSession()
			sctx := rottnest.WithSession(ctx, session)
			k := keys[i]
			q := rottnest.Query{Column: "event_id", UUID: &k, K: 1, Snapshot: -1}
			var res *rottnest.Result
			if *tracePath != "" {
				var tree *rottnest.TraceNode
				res, tree, err = client.Trace(sctx, q)
				if err == nil {
					traced = append(traced, tracedLookup{
						Pass: pass + 1, Key: fmt.Sprintf("%x", k[:4]),
						LatencyNS: int64(res.Stats.Latency),
						Pages:     res.Stats.PagesProbed, Tree: tree,
					})
				}
			} else {
				res, err = client.Search(sctx, q)
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("lookup %x...: %d match, %d pages probed, %d GETs, %d cache hits, simulated latency %v\n",
				k[:4], len(res.Matches), res.Stats.PagesProbed, res.Stats.GETs,
				res.Stats.CacheHits, res.Stats.Latency.Round(1e6))
		}
	}

	cache := rottnest.CacheStatsFrom(client.Metrics())
	fmt.Printf("read cache: %d hits, %d misses, %.1f KB saved\n",
		cache.Hits, cache.Misses, float64(cache.BytesSaved)/1e3)
	snapTotals := metrics.Snapshot()
	fmt.Printf("total object-store traffic: %d requests, %.1f MB read\n",
		snapTotals.Requests(), float64(snapTotals.BytesRead)/1e6)

	if *tracePath != "" {
		if err := writeAndVerifyTraces(*tracePath, traced); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traces: %d span trees written to %s and verified\n", len(traced), *tracePath)
	}
}

// writeAndVerifyTraces persists the collected trees and then checks
// them from the serialized form, so the round trip itself is part of
// what the smoke test proves.
func writeAndVerifyTraces(path string, traced []tracedLookup) error {
	if len(traced) == 0 {
		return fmt.Errorf("quickstart: no span trees collected")
	}
	data, err := json.MarshalIndent(traced, "", "  ")
	if err != nil {
		return fmt.Errorf("quickstart: marshal traces: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("quickstart: write %s: %w", path, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("quickstart: reread %s: %w", path, err)
	}
	var back []tracedLookup
	if err := json.Unmarshal(raw, &back); err != nil {
		return fmt.Errorf("quickstart: %s does not parse back: %w", path, err)
	}
	if len(back) != len(traced) {
		return fmt.Errorf("quickstart: %s holds %d trees, expected %d", path, len(back), len(traced))
	}
	for _, t := range back {
		where := fmt.Sprintf("pass %d lookup %s", t.Pass, t.Key)
		if t.Tree == nil {
			return fmt.Errorf("quickstart: %s: missing tree", where)
		}
		if err := t.Tree.Validate(); err != nil {
			return fmt.Errorf("quickstart: %s: %w", where, err)
		}
		for _, phase := range []string{"search.plan", "search.probe"} {
			if t.Tree.Find(phase) == nil {
				return fmt.Errorf("quickstart: %s: no %s span", where, phase)
			}
		}
		if t.Pages > 0 && t.Tree.Find("search.read") == nil {
			return fmt.Errorf("quickstart: %s: probed %d pages but has no search.read span", where, t.Pages)
		}
		// Phase virtual durations must sum exactly to the latency the
		// search reported: the session only advances inside phases.
		var sum int64
		for _, c := range t.Tree.Children {
			sum += int64(c.Virtual)
		}
		if sum != t.LatencyNS {
			return fmt.Errorf("quickstart: %s: phase virtual sum %dns != reported latency %dns", where, sum, t.LatencyNS)
		}
	}
	return nil
}
