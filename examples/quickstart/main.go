// Command quickstart is the smallest end-to-end Rottnest program: it
// creates a lake table of UUID-keyed events on a simulated object
// store, indexes the UUID column, and runs point lookups that would
// otherwise need a full scan — printing the simulated object-store
// latency of each.
package main

import (
	"context"
	"fmt"
	"log"

	"rottnest"
	"rottnest/internal/workload"
)

func main() {
	ctx := context.Background()

	// A simulated S3: strong read-after-write consistency, ~30ms
	// GETs, metered requests.
	store, clock, metrics := rottnest.NewSimulatedStore()

	// The lake: one table with a UUID column and a payload column.
	schema := rottnest.MustSchema(
		rottnest.Column{Name: "event_id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16},
		rottnest.Column{Name: "payload", Type: rottnest.TypeByteArray},
	)
	table, err := rottnest.CreateTableWithClock(ctx, store, clock, "lake/events", schema)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest three batches (three Parquet files).
	gen := workload.NewUUIDGen(42)
	var keys [][16]byte
	for batch := 0; batch < 3; batch++ {
		const rows = 20000
		ks := gen.Batch(rows)
		keys = append(keys, ks...)
		b := rottnest.NewBatch(schema)
		ids := make([][]byte, rows)
		payloads := make([][]byte, rows)
		for i, k := range ks {
			kk := k
			ids[i] = kk[:]
			payloads[i] = []byte(fmt.Sprintf("event %d of batch %d", i, batch))
		}
		b.Cols[0] = rottnest.ColumnValues{Bytes: ids}
		b.Cols[1] = rottnest.ColumnValues{Bytes: payloads}
		if _, err := table.Append(ctx, b, rottnest.WriterOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	snap, _ := table.Snapshot(ctx)
	fmt.Printf("lake: %d files, %d rows\n", len(snap.Files), snap.LiveRows())

	// Build the Rottnest index (one call covers all new files).
	client := rottnest.NewClientWithClock(table, clock, rottnest.Config{IndexDir: "rottnest/events"})
	entry, err := client.Index(ctx, "event_id", rottnest.KindTrie)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d files (%d rows) into %s (%.1f KB)\n",
		len(entry.Files), entry.Rows, entry.IndexKey, float64(entry.SizeBytes)/1024)

	// Point lookups with virtual-latency accounting. The client reads
	// through a shared LRU cache (on by default), so repeating a
	// lookup skips the object store: the second pass reports fewer
	// GETs and lower simulated latency.
	for pass := 0; pass < 2; pass++ {
		fmt.Printf("--- pass %d (%s) ---\n", pass+1, map[int]string{0: "cold", 1: "warm"}[pass])
		for _, i := range []int{0, 25000, 59999} {
			session := rottnest.NewSession()
			sctx := rottnest.WithSession(ctx, session)
			k := keys[i]
			res, err := client.Search(sctx, rottnest.Query{Column: "event_id", UUID: &k, K: 1, Snapshot: -1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("lookup %x...: %d match, %d pages probed, %d GETs, %d cache hits, simulated latency %v\n",
				k[:4], len(res.Matches), res.Stats.PagesProbed, res.Stats.GETs,
				res.Stats.CacheHits, res.Stats.Latency.Round(1e6))
		}
	}

	cache := client.CacheStats()
	fmt.Printf("read cache: %d hits, %d misses, %.1f KB saved\n",
		cache.Hits, cache.Misses, float64(cache.BytesSaved)/1e3)
	snapTotals := metrics.Snapshot()
	fmt.Printf("total object-store traffic: %d requests, %.1f MB read\n",
		snapTotals.Requests(), float64(snapTotals.BytesRead)/1e6)
}
