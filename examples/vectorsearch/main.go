// Command vectorsearch demonstrates retrieval-augmented-generation
// style ANN search over a lake of embeddings: it indexes a vector
// column with IVF-PQ and sweeps the nprobe/refine parameters to show
// the recall/latency trade-off the paper tunes for its recall targets
// (Figure 9).
package main

import (
	"context"
	"fmt"
	"log"

	"rottnest"
	"rottnest/internal/workload"
)

const (
	dim    = 32
	nVecs  = 20000
	nQuery = 30
	topK   = 10
)

func main() {
	ctx := context.Background()
	store, clock, _ := rottnest.NewSimulatedStore()

	schema := rottnest.MustSchema(
		rottnest.Column{Name: "emb", Type: rottnest.TypeFixedLenByteArray, TypeLen: 4 * dim},
		rottnest.Column{Name: "doc", Type: rottnest.TypeByteArray},
	)
	table, err := rottnest.CreateTableWith(ctx, store, "lake/corpus", schema, rottnest.TableOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 9, Dim: dim, Clusters: 64, Spread: 0.18})
	vecs := gen.Batch(nVecs)
	b := rottnest.NewBatch(schema)
	embs := make([][]byte, nVecs)
	docs := make([][]byte, nVecs)
	for i, v := range vecs {
		embs[i] = workload.Float32sToBytes(v)
		docs[i] = []byte(fmt.Sprintf("chunk-%05d", i))
	}
	b.Cols[0] = rottnest.ColumnValues{Bytes: embs}
	b.Cols[1] = rottnest.ColumnValues{Bytes: docs}
	if _, err := table.Append(ctx, b, rottnest.FileWriterOptions{}); err != nil {
		log.Fatal(err)
	}

	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "rottnest/corpus", Clock: clock})
	entry, err := client.Index(ctx, "emb", rottnest.KindIVFPQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IVF-PQ index: %.1f KB over %d vectors (%.1f bytes/vector)\n",
		float64(entry.SizeBytes)/1024, nVecs, float64(entry.SizeBytes)/nVecs)

	queries := gen.Queries(nQuery)
	fmt.Printf("%-8s %-8s %-12s %-12s\n", "nprobe", "refine", "recall@10", "latency")
	for _, cfg := range []struct{ nprobe, refine int }{
		{2, 20}, {4, 40}, {8, 80}, {16, 160}, {32, 320},
	} {
		var recallSum float64
		var latency float64
		for _, q := range queries {
			session := rottnest.NewSession()
			sctx := rottnest.WithSession(ctx, session)
			res, err := client.Search(sctx, rottnest.Query{
				Column: "emb", Vector: q, K: topK,
				NProbe: cfg.nprobe, Refine: cfg.refine, Snapshot: -1,
			})
			if err != nil {
				log.Fatal(err)
			}
			got := make([]int, len(res.Matches))
			for i, m := range res.Matches {
				got[i] = int(m.Row)
			}
			recallSum += workload.Recall(got, workload.ExactNearest(vecs, q, topK))
			latency += res.Stats.Latency.Seconds()
		}
		fmt.Printf("%-8d %-8d %-12.3f %.2fs\n",
			cfg.nprobe, cfg.refine, recallSum/float64(nQuery), latency/float64(nQuery))
	}
}
