// Command partitioned demonstrates structured-filter pruning (the
// paper's "normalized query" mechanism, Section VI): a week of
// time-partitioned service logs lands in the lake hour by hour, each
// batch indexed as it arrives, and an incident investigation combines
// a regex over messages with a time-window partition filter — so only
// the incident window's files are touched, regardless of total data
// volume.
package main

import (
	"context"
	"fmt"
	"log"

	"rottnest"
	"rottnest/internal/workload"
)

const (
	hours        = 24
	rowsPerHour  = 800
	incidentHour = 17
)

func main() {
	ctx := context.Background()
	store, clock, metrics := rottnest.NewSimulatedStore()

	schema := rottnest.MustSchema(
		rottnest.Column{Name: "ts", Type: rottnest.TypeInt64},
		rottnest.Column{Name: "message", Type: rottnest.TypeByteArray},
	)
	table, err := rottnest.CreateTableWith(ctx, store, "lake/logs", schema, rottnest.TableOptions{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "rottnest/logs", Clock: clock})

	// Ingest + index, hour by hour.
	text := workload.NewTextGen(workload.DefaultTextConfig(13))
	for hour := 0; hour < hours; hour++ {
		b := rottnest.NewBatch(schema)
		tss := make([]int64, rowsPerHour)
		msgs := make([][]byte, rowsPerHour)
		for i := 0; i < rowsPerHour; i++ {
			tss[i] = int64(hour*3600 + i*3600/rowsPerHour)
			msgs[i] = []byte("INFO " + text.Doc())
		}
		if hour == incidentHour {
			msgs[300] = []byte("ERROR payment declined code 502 retrying")
			msgs[700] = []byte("ERROR payment declined code 700 giving up")
		}
		b.Cols[0] = rottnest.ColumnValues{Ints: tss}
		b.Cols[1] = rottnest.ColumnValues{Bytes: msgs}
		if _, err := table.Append(ctx, b, rottnest.FileWriterOptions{RowGroupRows: 2048, PageBytes: 16 << 10}); err != nil {
			log.Fatal(err)
		}
		if _, err := client.Index(ctx, "message", rottnest.KindFM); err != nil {
			log.Fatal(err)
		}
	}
	// Keep the index tidy.
	if _, err := client.Compact(ctx, "message", rottnest.KindFM, rottnest.CompactOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Vacuum(ctx, rottnest.VacuumOptions{}); err != nil {
		log.Fatal(err)
	}
	snap, _ := table.Snapshot(ctx)
	fmt.Printf("lake: %d hourly files, %d rows\n", len(snap.Files), snap.LiveRows())

	investigate := func(label string, partition *rottnest.PartitionFilter) {
		session := rottnest.NewSession()
		sctx := rottnest.WithSession(ctx, session)
		res, err := client.Search(sctx, rottnest.Query{
			Column:    "message",
			Regex:     `ERROR payment declined code \d+`,
			K:         0,
			Snapshot:  -1,
			Partition: partition,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %d hit(s), %d files pruned, latency %v\n",
			label, len(res.Matches), res.Stats.PrunedFiles, res.Stats.Latency.Round(1e6))
		for _, m := range res.Matches {
			fmt.Printf("    row %d: %s\n", m.Row, m.Value)
		}
	}

	// Unfiltered: the regex's literal "ERROR payment declined code "
	// drives the FM-index over the whole table.
	investigate("whole table:", nil)

	// The on-call knows the incident window: prune to that hour.
	investigate("incident window only:", &rottnest.PartitionFilter{
		Column: "ts", Min: incidentHour * 3600, Max: (incidentHour+1)*3600 - 1,
	})

	snapReq := metrics.Snapshot()
	fmt.Printf("total object-store traffic: %d requests, %.1f MB read\n",
		snapReq.Requests(), float64(snapReq.BytesRead)/1e6)
}
